//! Per-loop content keys for incremental recompilation.
//!
//! The facts tier ([`crate::cache`]) memoizes whole-program facts under
//! a resolved-program fingerprint: any edit anywhere invalidates it.
//! This module computes a key *per loop* that covers exactly what that
//! loop's analysis can observe, so an edit invalidates only the loops
//! whose analysis could change:
//!
//! * the configuration prefix — capability bits, the analysis knobs
//!   (loop op budget, inline depth and statement budget, runtime-test
//!   switch), and the base interner state (op counts depend on
//!   interning order, so a key is only valid against the same base);
//! * the printed text of the loop's own unit, and the loop's ordinal
//!   within it (two identical loops in one unit analyze identically
//!   except for op-counter interleaving — the ordinal keeps their
//!   records distinct);
//! * the loop's post-inline *closure*: every unit reachable from its
//!   unit in the call graph — printed text, access summary, and the
//!   set of (caller, call-count) edges targeting it. The caller-edge
//!   set matters because whole-nest inlining removes a callee that is
//!   referenced nowhere else in the program, which changes the spliced
//!   program the loop is analyzed against;
//! * the unit's alias facts and the interprocedurally propagated
//!   scalar state seeding the unit and observed at the loop header —
//!   both flow in from *callers*, which are otherwise outside the
//!   closure.
//!
//! The key is deliberately conservative in one direction only: edits
//! that change the base interner (adding or removing any name or unit
//! anywhere) shift every key and force a cold re-analysis. Value-only
//! edits — the common incremental case — keep the interner stable, so
//! unaffected loops keep their keys.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use apar_minifort::pretty::print_unit;
use apar_minifort::ResolvedProgram;
use apar_symbolic::{Range, VarId};

use crate::alias::AliasInfo;
use crate::cache::caps_bits;
use crate::callgraph::CallGraph;
use crate::constprop::ConstProp;
use crate::loops::LoopForest;
use crate::ranges::ScalarState;
use crate::summary::Summaries;
use crate::symx::SymMap;
use crate::Capabilities;

/// Analysis knobs that must match for a cached loop record to be
/// reusable, hashed into every key's prefix. Order matters; callers
/// build it with [`Knobs::bits`].
#[derive(Clone, Copy, Debug)]
pub struct Knobs {
    pub loop_op_budget: u64,
    pub inline_depth: usize,
    pub inline_stmt_budget: usize,
    pub runtime_test: bool,
}

impl Knobs {
    fn hash_into<H: Hasher>(&self, h: &mut H) {
        self.loop_op_budget.hash(h);
        self.inline_depth.hash(h);
        self.inline_stmt_budget.hash(h);
        self.runtime_test.hash(h);
    }
}

/// Content keys for every loop in `forest.loops`, index-aligned with
/// it. A key covers everything the loop's analysis can observe (module
/// docs); two compiles produce the same key for a loop exactly when
/// its analysis — and therefore its report — is bit-identical.
#[allow(clippy::too_many_arguments)]
pub fn loop_keys(
    rp: &ResolvedProgram,
    forest: &LoopForest,
    cg: &CallGraph,
    summaries: &Summaries,
    alias: &AliasInfo,
    cp: &ConstProp,
    base_sym: &SymMap,
    caps: &Capabilities,
    knobs: &Knobs,
) -> Vec<u64> {
    // Configuration prefix, shared by every loop of this compile.
    let prefix = {
        let mut h = DefaultHasher::new();
        caps_bits(caps).hash(&mut h);
        knobs.hash_into(&mut h);
        for (_, name) in base_sym.interner.iter() {
            name.hash(&mut h);
        }
        h.finish()
    };

    // A unit's text is printed once; a closure member's contribution
    // (text + summary + caller edges) is digested once — closures
    // overlap heavily, so sharing member digests keeps the whole key
    // computation linear in program size rather than O(units²).
    let printed: HashMap<&str, String> = rp
        .program
        .units
        .iter()
        .map(|u| {
            let mut text = String::new();
            print_unit(u, &mut text);
            (u.name.as_str(), text)
        })
        .collect();
    let mut member_digest: HashMap<String, u64> = HashMap::new();
    let mut digest_member = |r: &str| -> u64 {
        if let Some(&d) = member_digest.get(r) {
            return d;
        }
        let mut h = DefaultHasher::new();
        r.hash(&mut h);
        if let Some(text) = printed.get(r) {
            text.hash(&mut h);
        }
        format!("{:?}", summaries.of(r)).hash(&mut h);
        // Caller edges: whole-nest inlining drops a callee only if
        // nothing else in the program references it, so the set of
        // callers (with per-caller site counts) is observable.
        let mut callers: HashMap<&str, u64> = HashMap::new();
        for site in cg.calls_to(r) {
            *callers.entry(site.caller.as_str()).or_insert(0) += 1;
        }
        let mut callers: Vec<_> = callers.into_iter().collect();
        callers.sort();
        callers.hash(&mut h);
        let d = h.finish();
        member_digest.insert(r.to_string(), d);
        d
    };

    // Per-unit context digest (closure text + summaries + alias +
    // seed), memoized — loops in one unit share all of it.
    let mut unit_digest: HashMap<String, u64> = HashMap::new();
    let mut digest_of = |unit: &str| -> u64 {
        if let Some(&d) = unit_digest.get(unit) {
            return d;
        }
        let mut h = DefaultHasher::new();
        prefix.hash(&mut h);
        unit.hash(&mut h);
        if let Some(text) = printed.get(unit) {
            text.hash(&mut h);
        }
        // The closure: every unit the inliner may splice in, in sorted
        // order (reachable() iterates a HashSet).
        let mut closure: Vec<String> = cg.reachable(unit).into_iter().collect();
        closure.sort();
        for r in &closure {
            if r == unit {
                continue;
            }
            digest_member(r).hash(&mut h);
        }
        0xb6u8.hash(&mut h);
        alias.digest_unit(unit, &mut h);
        0xc7u8.hash(&mut h);
        if let Some(seed) = cp.seeds.get(unit) {
            hash_scalar_state(seed, &mut h);
        }
        let d = h.finish();
        unit_digest.insert(unit.to_string(), d);
        d
    };

    // Ordinal of each loop within its unit (source order), so two
    // textually identical loops in one unit get distinct keys.
    let mut ordinal_in_unit: HashMap<&str, u64> = HashMap::new();

    forest
        .loops
        .iter()
        .map(|info| {
            let unit = info.id.unit.as_str();
            let ord = ordinal_in_unit.entry(unit).or_insert(0);
            let my_ord = *ord;
            *ord += 1;

            let mut h = DefaultHasher::new();
            digest_of(unit).hash(&mut h);
            my_ord.hash(&mut h);
            // Structural echo of the loop itself, re-verified at splice
            // time (`SplicedLoop` carries the same fields).
            info.var.hash(&mut h);
            info.depth.hash(&mut h);
            info.target.hash(&mut h);
            info.calls.hash(&mut h);
            info.inner_depth.hash(&mut h);
            info.has_foreign_call.hash(&mut h);
            // Scalar state observed at this loop's header (propagated
            // in from callers via interprocedural constprop).
            if let Some(ur) = cp.ranges.get(unit) {
                if let Some(st) = ur.at_loop.get(&info.id.stmt) {
                    hash_scalar_state(st, &mut h);
                }
            }
            h.finish()
        })
        .collect()
}

/// Hashes a [`ScalarState`] in sorted order (both maps are hash maps,
/// so iteration order is not deterministic).
fn hash_scalar_state<H: Hasher>(st: &ScalarState, h: &mut H) {
    let mut values: Vec<_> = st.values.iter().collect();
    values.sort_by_key(|(v, _)| **v);
    for (v, e) in values {
        v.hash(h);
        e.hash(h);
    }
    0xd8u8.hash(h);
    let mut env: Vec<(&VarId, &Range)> = st.env.iter().collect();
    env.sort_by_key(|(v, _)| **v);
    for (v, r) in env {
        v.hash(h);
        r.lo.hash(h);
        r.hi.hash(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apar_minifort::frontend;

    fn keys_of(src: &str) -> Vec<u64> {
        let rp = frontend(src).expect("frontend");
        let forest = LoopForest::build(&rp);
        let cg = CallGraph::build(&rp);
        let mut sym = SymMap::new();
        let ops = apar_symbolic::OpCounter::unlimited();
        let caps = Capabilities::polaris2008();
        let summaries = Summaries::build(&rp, &cg, &mut sym, caps, &ops);
        let alias = AliasInfo::build(&rp, &cg, caps, &ops);
        let cp = crate::constprop::propagate(&rp, &cg, &mut sym, caps, &summaries);
        let knobs = Knobs {
            loop_op_budget: u64::MAX,
            inline_depth: 2,
            inline_stmt_budget: 200,
            runtime_test: false,
        };
        loop_keys(&rp, &forest, &cg, &summaries, &alias, &cp, &sym, &caps, &knobs)
    }

    const TWO_UNITS: &str = "PROGRAM P\nREAL X(10)\nDO I = 1, 10\nX(I) = 1.0\nENDDO\nEND\nSUBROUTINE S\nREAL Y(10)\nDO J = 1, 10\nY(J) = 2.0\nENDDO\nEND\n";

    #[test]
    fn keys_are_deterministic() {
        assert_eq!(keys_of(TWO_UNITS), keys_of(TWO_UNITS));
    }

    #[test]
    fn value_edit_in_one_unit_preserves_other_units_keys() {
        let a = keys_of(TWO_UNITS);
        let b = keys_of(&TWO_UNITS.replace("Y(J) = 2.0", "Y(J) = 3.0"));
        assert_eq!(a.len(), 2);
        assert_eq!(a[0], b[0], "untouched unit's loop key must survive");
        assert_ne!(a[1], b[1], "edited unit's loop key must change");
    }

    #[test]
    fn callee_edit_invalidates_caller_loop_key() {
        let src = "PROGRAM P\nREAL X(10)\nDO I = 1, 10\nCALL S(X, I)\nENDDO\nEND\nSUBROUTINE S(A, K)\nREAL A(10)\nA(K) = 1.0\nEND\n";
        let a = keys_of(src);
        let b = keys_of(&src.replace("A(K) = 1.0", "A(K) = 2.0"));
        assert_ne!(a[0], b[0], "caller loop key must track callee edits");
    }

    #[test]
    fn identical_loops_in_one_unit_get_distinct_keys() {
        let src = "PROGRAM P\nREAL X(10)\nDO I = 1, 10\nX(I) = 1.0\nENDDO\nDO I = 1, 10\nX(I) = 1.0\nENDDO\nEND\n";
        let k = keys_of(src);
        assert_eq!(k.len(), 2);
        assert_ne!(k[0], k[1]);
    }
}

//! Service containment: hostile suites degrade their own response and
//! nothing else. Batches mixing clean sources with fuzz-garbled bytes
//! come back with one outcome per request — diagnostics, not panics —
//! and the daemon loop survives arbitrary input.

use apar_core::{Compiler, CompilerProfile};
use apar_minicheck::{fortgen, mutate, Rng};
use apar_service::{daemon, CompileService, ServiceConfig, SuiteArtifact, SuiteRequest};
use apar_workloads::linpack;

/// Clean + garbled + mutated requests, deterministic by seed.
fn mixed_batch() -> Vec<SuiteRequest> {
    let mut reqs = Vec::new();
    let clean = linpack::suite();
    reqs.push(SuiteRequest::new(clean.name.clone(), clean.source.clone()));
    for seed in 0..6u64 {
        let mut rng = Rng::new(0x5eed_0000 + seed);
        let garbled = fortgen::gen_program(
            &mut rng,
            &fortgen::GenConfig {
                garble: 0.3,
                ..fortgen::GenConfig::default()
            },
        );
        reqs.push(SuiteRequest::new(format!("garbled-{}", seed), garbled));
    }
    for seed in 0..4u64 {
        let mut rng = Rng::new(0xdead_0000 + seed);
        let mutated = mutate::mutate(&mut rng, &clean.source, 8);
        reqs.push(SuiteRequest::new(format!("mutated-{}", seed), mutated));
    }
    reqs
}

#[test]
fn mixed_batch_returns_per_suite_diags_with_zero_escaped_panics() {
    let reqs = mixed_batch();
    let service = CompileService::new(ServiceConfig {
        workers: 4,
        ..ServiceConfig::default()
    });
    let out = service.compile_many(&reqs);
    assert_eq!(out.outcomes.len(), reqs.len(), "one outcome per request");
    assert_eq!(out.stats.failed, 0, "no compile escaped its sandbox");
    let mut diag_suites = 0;
    for o in &out.outcomes {
        match &*o.artifact {
            SuiteArtifact::Failed(msg) => panic!("{} failed: {}", o.name, msg),
            _ => {
                if o.artifact.diag_count() > 0 {
                    diag_suites += 1;
                }
            }
        }
    }
    assert!(
        diag_suites > 0,
        "a 30%-garble corpus must trip some recovery diagnostics"
    );
    // The clean suite is untouched by its hostile neighbors.
    let clean_ref = Compiler::new(CompilerProfile::polaris2008())
        .compile_source_recovering(&reqs[0].name, &reqs[0].source)
        .report_signature();
    assert_eq!(out.outcomes[0].artifact.signature(), clean_ref);
    assert_eq!(out.outcomes[0].artifact.diag_count(), 0);
}

#[test]
fn hostile_batches_are_worker_count_invariant() {
    let reqs = mixed_batch();
    let sig = |workers: usize| -> Vec<String> {
        let service = CompileService::new(ServiceConfig {
            workers,
            ..ServiceConfig::default()
        });
        service
            .compile_many(&reqs)
            .outcomes
            .iter()
            .map(|o| o.artifact.signature())
            .collect()
    };
    assert_eq!(sig(1), sig(4));
}

#[test]
fn daemon_survives_a_hostile_session_and_keeps_serving() {
    // One scripted session: a clean compile, raw garbled bytes as both
    // commands and SRC bodies, protocol abuse, then proof of life.
    let clean = linpack::suite();
    let mut rng = Rng::new(0xfeed_f00d);
    let garbled = fortgen::gen_program(
        &mut rng,
        &fortgen::GenConfig {
            garble: 0.5,
            ..fortgen::GenConfig::default()
        },
    );
    let mut input: Vec<u8> = Vec::new();
    let push_src = |input: &mut Vec<u8>, name: &str, src: &str| {
        input.extend_from_slice(
            format!("SRC {} {}\n", name, src.lines().count()).as_bytes(),
        );
        for line in src.lines() {
            input.extend_from_slice(line.as_bytes());
            input.push(b'\n');
        }
    };
    push_src(&mut input, "clean", &clean.source);
    input.extend_from_slice(&[0x00, 0xff, 0x80, b' ', 0xfe, b'\n']); // binary noise
    input.extend_from_slice(b"SRC broken-header\n");
    push_src(&mut input, "garbled", &garbled);
    input.extend_from_slice(b"FILE /no/such/path\n");
    push_src(&mut input, "clean-again", &clean.source);
    input.extend_from_slice(b"STATS\nQUIT\n");

    let service = CompileService::new(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    });
    let mut out = Vec::new();
    let summary = daemon::serve(&service, input.as_slice(), &mut out).expect("io");
    let text = String::from_utf8_lossy(&out);

    assert!(summary.quit, "daemon reached QUIT alive:\n{}", text);
    assert_eq!(summary.compiled, 3, "{}", text);
    assert_eq!(summary.errors, 3, "{}", text);
    assert!(
        text.contains("\"name\":\"clean-again\"") && text.contains("\"served\":\"hit\""),
        "the repeat compile after the hostility is a cache hit:\n{}",
        text
    );
    assert_eq!(service.cumulative_stats().failed, 0);
}

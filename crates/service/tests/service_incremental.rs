//! Incremental recompilation: after an edit, loops whose per-loop
//! content key is unchanged are spliced from the shared store instead
//! of re-analyzed — and a spliced report must be bit-identical to a
//! cold one, at every thread count, or the splice layer is broken.
//!
//! The key's content closure is unit-granular (the unit's printed text
//! plus every unit reachable from it post-inline), so these programs
//! put each loop in its own subroutine: an edit then invalidates
//! exactly the loops whose closure saw it, and the rest must splice.

use std::sync::Arc;

use apar_analysis::cache::SharedFactsStore;
use apar_core::{Compiler, CompilerProfile};

/// Three loops in three call-disjoint units, one of which funnels
/// through a callee — the inliner's invalidation path.
const BASE: &str = "\
PROGRAM MAIN
REAL A(100), B(100), C(100)
CALL PURE1(A)
CALL WORK(B)
CALL PURE2(C)
END
SUBROUTINE PURE1(X)
REAL X(100)
DO I = 1, 100
X(I) = X(I) + 1.0
ENDDO
END
SUBROUTINE WORK(X)
REAL X(100)
DO I = 1, 100
CALL SET(X, I)
ENDDO
END
SUBROUTINE SET(X, K)
REAL X(100)
X(K) = K * 4.0
END
SUBROUTINE PURE2(X)
REAL X(100)
DO I = 1, 100
X(I) = X(I) * 2.0
ENDDO
END
";

fn edit(base: &str, from: &str, to: &str) -> String {
    assert!(base.contains(from), "edit anchor {from:?} not in source");
    base.replacen(from, to, 1)
}

/// Compile `base` cold through a fresh store, then `after` warm through
/// the same store, at the given thread count. Asserts the warm report
/// is bit-identical to a plain store-free compile of `after`, and
/// returns the warm pass's loop-tier counter deltas.
fn recompile(
    base: &str,
    after: &str,
    threads: usize,
) -> apar_analysis::cache::SharedStats {
    let profile = CompilerProfile::polaris2008().with_threads(threads);
    let store = Arc::new(SharedFactsStore::bounded(64, 8 << 20));
    let cold = Compiler::new(profile.clone())
        .with_shared_facts(Arc::clone(&store))
        .compile_source("suite", base)
        .expect("cold compile");
    let plain_cold = Compiler::new(profile.clone())
        .compile_source("suite", base)
        .expect("plain cold compile");
    assert_eq!(
        cold.report_signature(),
        plain_cold.report_signature(),
        "attaching a store changed a cold report (threads={threads})"
    );

    let before = store.stats();
    let warm = Compiler::new(profile.clone())
        .with_shared_facts(Arc::clone(&store))
        .compile_source("suite", after)
        .expect("warm compile");
    let plain = Compiler::new(profile)
        .compile_source("suite", after)
        .expect("plain compile");
    assert_eq!(
        warm.report_signature(),
        plain.report_signature(),
        "spliced recompile diverged from a cold compile (threads={threads})"
    );
    store.stats().since(&before)
}

#[test]
fn one_line_edit_splices_every_untouched_unit() {
    for threads in [1, 4] {
        let after = edit(BASE, "X(I) + 1.0", "X(I) + 1.5");
        let d = recompile(BASE, &after, threads);
        // PURE1's loop re-analyzes; WORK's and PURE2's splice.
        assert_eq!(d.loop_hits, 2, "threads={threads}: {d:?}");
        assert_eq!(d.loop_misses, 1, "threads={threads}: {d:?}");
        assert_eq!(d.loop_refusals, 0, "threads={threads}: {d:?}");
    }
}

#[test]
fn callee_edit_invalidates_callers_through_the_inliner() {
    for threads in [1, 4] {
        // SET's body changes but WORK's own text does not: WORK's loop
        // key must still change, because SET is inlined into it.
        let after = edit(BASE, "K * 4.0", "K * 5.0");
        let d = recompile(BASE, &after, threads);
        assert_eq!(
            d.loop_misses, 1,
            "threads={threads}: the caller loop re-analyzed: {d:?}"
        );
        assert_eq!(d.loop_hits, 2, "threads={threads}: {d:?}");
        assert_eq!(d.loop_refusals, 0, "threads={threads}: {d:?}");
    }
}

#[test]
fn whitespace_only_edit_splices_every_loop() {
    for threads in [1, 4] {
        // Extra spaces vanish in the resolved program's printed text,
        // so every loop's content key is unchanged.
        let after = edit(BASE, "X(I) = X(I) + 1.0", "X(I)  =  X(I)   +  1.0");
        let d = recompile(BASE, &after, threads);
        assert_eq!(d.loop_hits, 3, "threads={threads}: {d:?}");
        assert_eq!(d.loop_misses, 0, "threads={threads}: {d:?}");
    }
}

#[test]
fn eviction_squeeze_misses_every_splice_yet_identity_holds() {
    // A store squeezed to its floor keeps at most 8 loop records.
    // Flushing it with an 8-loop suite evicts everything the first
    // suite stored: the recompile then misses every splice lookup and
    // must fall back to full re-analysis with an identical report.
    let mut flush = String::from("PROGRAM FLUSH\nREAL Z(50)\n");
    for _ in 0..8 {
        flush.push_str("DO I = 1, 50\nZ(I) = Z(I) + 1.0\nENDDO\n");
    }
    flush.push_str("END\n");

    let profile = CompilerProfile::polaris2008();
    let store = Arc::new(SharedFactsStore::bounded(1, 1));
    let with_store = |src: &str| {
        Compiler::new(profile.clone())
            .with_shared_facts(Arc::clone(&store))
            .compile_source("suite", src)
            .expect("compile")
    };
    with_store(BASE);
    with_store(&flush);

    let before = store.stats();
    let warm = with_store(BASE);
    let d = store.stats().since(&before);
    assert_eq!(d.loop_hits, 0, "every record was evicted: {d:?}");
    assert_eq!(d.loop_misses, 3, "{d:?}");
    assert!(before.loop_entries <= 8, "{before:?}");

    let plain = Compiler::new(profile)
        .compile_source("suite", BASE)
        .expect("plain compile");
    assert_eq!(
        warm.report_signature(),
        plain.report_signature(),
        "an all-miss recompile diverged"
    );
}

//! Resilience through the public API: deadlines, admission control,
//! quarantine, degraded tiers — and two independent service handles
//! sharing one squeezed facts store without ever diverging.

use std::sync::Arc;
use std::time::Duration;

use apar_analysis::cache::SharedFactsStore;
use apar_core::{Compiler, CompilerProfile, PassId};
use apar_minicheck::fortgen::{gen_program, GenConfig};
use apar_minicheck::{Rng, BASE_SEED};
use apar_service::{CompileService, Served, ServiceConfig, SuiteRequest};
use apar_workloads::{perfect, seismic, DataSize, Variant};

fn workload_batch() -> Vec<SuiteRequest> {
    let seismic = seismic::full_suite(DataSize::Small, Variant::Serial);
    let perfect = &perfect::codes()[0];
    vec![
        SuiteRequest::new(seismic.name.clone(), seismic.source),
        SuiteRequest::new(perfect.name.clone(), perfect.source.clone()),
    ]
}

/// Plain service-free reference signatures.
fn plain_signatures(reqs: &[SuiteRequest]) -> Vec<String> {
    let compiler = Compiler::new(CompilerProfile::polaris2008());
    reqs.iter()
        .map(|r| {
            compiler
                .compile_source_recovering(&r.name, &r.source)
                .report_signature()
        })
        .collect()
}

/// Satellite: two `CompileService` handles share one facts store that
/// is squeezed hard enough to evict between every compile. Interleaved
/// batches from both handles must stay bit-identical to plain compiles
/// — cross-client adoption, refusal, and eviction are all allowed,
/// divergence is not — and the lifetime counters of the two handles
/// must reconcile with each other and the shared store.
#[test]
fn two_handles_one_squeezed_store_never_diverge() {
    let store = Arc::new(SharedFactsStore::bounded(2, 20_000));
    let config = || ServiceConfig {
        workers: 2,
        result_entries: 1, // force the facts tier to carry the load
        ..ServiceConfig::default()
    };
    let a = CompileService::with_facts_store(config(), Arc::clone(&store));
    let b = CompileService::with_facts_store(config(), Arc::clone(&store));

    let mut reqs = workload_batch();
    let mut rng = Rng::new(BASE_SEED ^ 0x5EED);
    for i in 0..3 {
        reqs.push(SuiteRequest::new(
            format!("gen-{}", i),
            gen_program(&mut rng, &GenConfig::default()),
        ));
    }
    let reference = plain_signatures(&reqs);

    for round in 0..3 {
        for (who, service) in [("a", &a), ("b", &b)] {
            let out = service.compile_many(&reqs);
            let got: Vec<String> = out
                .outcomes
                .iter()
                .map(|o| o.artifact.signature())
                .collect();
            assert_eq!(got, reference, "client {} round {} diverged", who, round);
        }
    }

    // The squeeze was real: the store thrashed the whole time.
    let shared = store.stats();
    assert!(shared.evictions > 0, "2-entry store must evict: {:?}", shared);
    // Both handles observe the same shared store...
    assert_eq!(a.facts_store().stats().misses, b.facts_store().stats().misses);
    // ...and each handle's own ledger is internally consistent: every
    // request it ever saw is classified exactly once.
    for (who, service) in [("a", &a), ("b", &b)] {
        let s = service.cumulative_stats();
        assert_eq!(
            s.cold + s.result_hits + s.deduped + s.failed + s.rejected
                + s.deadline_expired + s.quarantined + s.degraded,
            s.suites,
            "client {} counters do not reconcile: {:?}",
            who,
            s
        );
        assert_eq!(s.suites, 3 * reqs.len(), "client {}", who);
    }

    // With room to breathe, the same two handles adopt each other's
    // facts: client B's cold compiles hit analysis client A cached.
    let store = Arc::new(SharedFactsStore::bounded(256, 64 << 20));
    let roomy = || ServiceConfig {
        workers: 2,
        result_entries: 1,
        ..ServiceConfig::default()
    };
    let a = CompileService::with_facts_store(roomy(), Arc::clone(&store));
    let b = CompileService::with_facts_store(roomy(), Arc::clone(&store));
    a.compile_many(&reqs);
    let before = store.stats();
    let out = b.compile_many(&reqs);
    // The per-loop incremental tier sits in front of the facts tier,
    // so an unchanged recompile usually splices loop records instead
    // of re-adopting whole-program facts; either counter proves B was
    // served from A's work.
    let after = store.stats();
    assert!(
        after.hits + after.loop_hits > before.hits + before.loop_hits,
        "client B adopted none of client A's analysis: {:?}",
        after
    );
    let got: Vec<String> = out
        .outcomes
        .iter()
        .map(|o| o.artifact.signature())
        .collect();
    assert_eq!(got, reference, "adoption changed a report");
}

/// A zero deadline expires structurally; dropping the deadline then
/// serves the very same request at full fidelity.
#[test]
fn expired_request_recovers_once_the_deadline_is_dropped() {
    let reqs = workload_batch();
    let reference = plain_signatures(&reqs);
    let service = CompileService::new(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    });

    let doomed: Vec<SuiteRequest> = reqs
        .iter()
        .map(|r| r.clone().with_deadline(Duration::ZERO))
        .collect();
    let out = service.compile_many(&doomed);
    for o in &out.outcomes {
        assert_eq!(o.served, Served::DeadlineExpired, "{}", o.name);
        let r = o.artifact.compile().expect("partial report, not absence");
        assert!(r.report.deadline_expired);
    }
    assert_eq!(out.stats.deadline_expired, reqs.len());

    // Nothing half-done was retained: the deadline-free retry is a
    // cold, full-fidelity compile identical to the plain reference.
    let out = service.compile_many(&reqs);
    assert_eq!(out.stats.cold, reqs.len());
    let got: Vec<String> = out
        .outcomes
        .iter()
        .map(|o| o.artifact.signature())
        .collect();
    assert_eq!(got, reference);
}

/// Held capacity forces the whole resilience surface at once: shed
/// requests answer `Rejected`, admitted ones compile degraded, and the
/// overload latch clears only after the hold drains.
#[test]
fn held_capacity_sheds_degrades_and_recovers() {
    let service = CompileService::new(ServiceConfig {
        workers: 2,
        max_pending: 4,
        high_watermark: 3,
        low_watermark: 2,
        ..ServiceConfig::default()
    });
    let reqs = workload_batch();

    {
        let _hold = service.hold_capacity(3);
        assert!(service.overloaded());
        let out = service.compile_many(&reqs);
        // Capacity 1: one admitted (degraded by depth), one shed.
        assert_eq!(out.stats.rejected, 1, "{:?}", out.stats);
        assert_eq!(out.stats.degraded, 1, "{:?}", out.stats);
        let shed = out
            .outcomes
            .iter()
            .find(|o| o.served == Served::Rejected)
            .expect("one outcome was shed");
        assert!(shed.artifact.compile().is_none(), "nothing ran for {}", shed.name);
    }

    assert!(!service.overloaded(), "latch clears once the hold drains");
    let out = service.compile_many(&reqs);
    assert_eq!(out.stats.rejected, 0);
    assert_eq!(out.stats.degraded, 0);
    let reference = plain_signatures(&reqs);
    let got: Vec<String> = out
        .outcomes
        .iter()
        .map(|o| o.artifact.signature())
        .collect();
    assert_eq!(got, reference, "post-recovery compiles are full fidelity");
}

/// A crash-looping suite strikes out, is refused with a structured
/// `Quarantined` answer, and never poisons an innocent suite sharing
/// the same service.
#[test]
fn quarantine_is_per_suite_not_per_service() {
    let profile =
        CompilerProfile::polaris2008().with_fault(PassId::DataDependence, "FZPANIC", None);
    let service = CompileService::new(ServiceConfig {
        profile,
        workers: 1,
        quarantine_strikes: 2,
        quarantine_backoff_ms: 60_000, // no probation within this test
        ..ServiceConfig::default()
    });

    let mut rng = Rng::new(BASE_SEED ^ 0xFA11);
    let bad_src = gen_program(&mut rng, &GenConfig::default())
        .replace("PROGRAM FUZZ", "PROGRAM FZPANIC");
    let bad = SuiteRequest::new("bad", bad_src);
    let good = workload_batch().remove(1);

    for strike in 0..2 {
        let out = service.compile_many(std::slice::from_ref(&bad));
        assert_eq!(out.outcomes[0].served, Served::Cold, "strike {}", strike);
        let r = out.outcomes[0].artifact.compile().expect("contained");
        assert!(r.report.panicked_loops() > 0, "fault fired on strike {}", strike);
    }
    let out = service.compile_many(&[bad.clone(), good.clone()]);
    assert_eq!(out.outcomes[0].served, Served::Quarantined);
    assert!(
        out.outcomes[0].artifact.compile().is_none(),
        "quarantined suites are refused, not recompiled"
    );
    assert_eq!(
        out.outcomes[1].artifact.signature(),
        plain_signatures(std::slice::from_ref(&good))[0],
        "the innocent suite is untouched"
    );
    assert_eq!(service.quarantined_suites(), 1);
}

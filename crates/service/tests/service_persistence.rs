//! Durable-store persistence: write → kill → recover round-trips.
//!
//! The store's contract is *zero trust in file contents*: every test
//! here damages the logs some way — torn tail, flipped bit, stale
//! version header, unusable directory, contended lock, a real `kill -9`
//! of a serving daemon — and recovery must refuse exactly the damaged
//! records (structured counters, never a panic) while everything that
//! survives serves warm and bit-identical to a cold compile.

use std::fs;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

use apar_service::{CompileService, Served, ServiceConfig, SuiteRequest};

/// A fresh scratch directory per test (removed up front so a crashed
/// prior run can't leak state in).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "apar_persist_it_{}_{}",
        std::process::id(),
        tag
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Three small distinct suites. Each has a loop that calls a
/// subroutine: the inliner then builds a specialized per-loop program
/// whose facts land in the shared store, so all three tiers (facts,
/// loops, results) get records.
fn suites() -> Vec<SuiteRequest> {
    let alpha = "\
PROGRAM ALPHA
REAL A(100)
DO I = 1, 100
CALL FILLA(A, I)
ENDDO
END
SUBROUTINE FILLA(X, K)
REAL X(100)
X(K) = K * 2.0
END
";
    let beta = "\
PROGRAM BETA
REAL B(80), C(80)
DO I = 1, 80
CALL ADDB(B, C, I)
ENDDO
DO I = 1, 80
C(I) = B(I) * 3.0
ENDDO
END
SUBROUTINE ADDB(X, Y, K)
REAL X(80)
REAL Y(80)
X(K) = Y(K) + 1.0
END
";
    let gamma = "\
PROGRAM GAMMA
REAL S
REAL D(60)
S = 0.0
DO I = 1, 60
CALL SCALED(D, I)
ENDDO
DO I = 1, 60
S = S + D(I)
ENDDO
END
SUBROUTINE SCALED(X, K)
REAL X(60)
X(K) = K * 1.5
END
";
    vec![
        SuiteRequest::new("alpha", alpha),
        SuiteRequest::new("beta", beta),
        SuiteRequest::new("gamma", gamma),
    ]
}

fn service(workers: usize) -> CompileService {
    CompileService::new(ServiceConfig {
        workers,
        ..ServiceConfig::default()
    })
}

/// What seeding wrote: the cold report signatures plus the exact
/// facts- and loop-tier record counts the store persisted.
struct Seeded {
    cold_sigs: Vec<String>,
    facts_records: u64,
    loop_records: u64,
}

/// Compiles the corpus through a store at `dir`, returns what was
/// persisted, and drops the service (releasing the lock).
fn seed_store(dir: &Path) -> Seeded {
    let svc = service(2).with_store(dir);
    let batch = svc.compile_many(&suites());
    assert!(
        batch.outcomes.iter().all(|o| o.served == Served::Cold),
        "seed batch must be cold"
    );
    let stats = svc.store_stats();
    assert!(stats.enabled && !stats.read_only, "{stats:?}");
    assert!(stats.appended_records > 0, "{stats:?}");
    assert_eq!(stats.append_errors, 0, "{stats:?}");
    let facts_records = svc.facts_store().facts_snapshot().len() as u64;
    let loop_records = svc.facts_store().loop_snapshot().len() as u64;
    assert!(facts_records > 0, "corpus must exercise the facts tier");
    assert!(loop_records > 0, "corpus must exercise the loop tier");
    Seeded {
        cold_sigs: batch
            .outcomes
            .iter()
            .map(|o| o.artifact.signature())
            .collect(),
        facts_records,
        loop_records,
    }
}

#[test]
fn restart_recovers_every_tier_and_serves_warm() {
    let dir = scratch("roundtrip");
    let seeded = seed_store(&dir);
    let cold_sigs = seeded.cold_sigs.clone();

    let svc = service(2).with_store(&dir);
    let s = svc.store_stats();
    assert_eq!(s.recovered_results, 3, "{s:?}");
    assert_eq!(s.recovered_facts, seeded.facts_records, "{s:?}");
    assert_eq!(s.recovered_loops, seeded.loop_records, "{s:?}");
    assert_eq!(s.recovery_refusals, 0, "undamaged logs refuse nothing: {s:?}");

    let warm = svc.compile_many(&suites());
    for (o, cold_sig) in warm.outcomes.iter().zip(&cold_sigs) {
        assert_eq!(o.served, Served::CacheHit, "{}: {:?}", o.name, o.served);
        assert_eq!(
            &o.artifact.signature(),
            cold_sig,
            "{}: recovered result diverged from the cold compile",
            o.name
        );
    }
    assert_eq!(warm.stats.result_hits, 3, "{:?}", warm.stats);
    drop(svc);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn torn_tail_refuses_exactly_the_last_record() {
    let dir = scratch("torn");
    let cold_sigs = seed_store(&dir).cold_sigs;

    // Simulate a crash mid-append: the last 7 bytes of the results log
    // never made it to disk.
    let log = dir.join("results.log");
    let len = fs::metadata(&log).expect("results.log exists").len();
    let f = fs::OpenOptions::new().write(true).open(&log).expect("open log");
    f.set_len(len - 7).expect("truncate");
    drop(f);

    let svc = service(2).with_store(&dir);
    let s = svc.store_stats();
    assert_eq!(s.refused_framing, 1, "exactly the torn record: {s:?}");
    assert_eq!(s.recovery_refusals, 1, "{s:?}");
    assert_eq!(s.recovered_results, 2, "the intact prefix survives: {s:?}");

    // The lost suite recompiles cold and still matches its old report.
    let again = svc.compile_many(&suites());
    assert_eq!(again.stats.result_hits, 2, "{:?}", again.stats);
    for (o, cold_sig) in again.outcomes.iter().zip(&cold_sigs) {
        assert_eq!(&o.artifact.signature(), cold_sig, "{}", o.name);
    }
    drop(svc);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn flipped_bit_refuses_one_checksum_and_resyncs_past_it() {
    let dir = scratch("bitflip");
    seed_store(&dir);

    // Flip one bit inside the first loop record's payload: its CRC must
    // refuse it, and framing must carry the scan to every later record.
    let log = dir.join("loops.log");
    let mut bytes = fs::read(&log).expect("loops.log");
    let magic = [0xA5u8, b'R', b'E', b'C'];
    let first = bytes[8..]
        .windows(4)
        .position(|w| w == magic)
        .map(|i| i + 8)
        .expect("at least one loop record");
    let total = bytes[8..].windows(4).filter(|w| *w == magic).count() as u64;
    bytes[first + 20] ^= 0x01; // 12 bytes of frame, then payload
    fs::write(&log, &bytes).expect("write damaged log");

    let svc = service(2).with_store(&dir);
    let s = svc.store_stats();
    assert_eq!(s.refused_crc, 1, "{s:?}");
    assert_eq!(s.recovery_refusals, 1, "{s:?}");
    assert_eq!(
        s.recovered_loops,
        total - 1,
        "every record after the flipped one survives: {s:?}"
    );
    drop(svc);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn stale_version_header_refuses_that_file_only() {
    let dir = scratch("version");
    seed_store(&dir);

    let log = dir.join("facts.log");
    let mut bytes = fs::read(&log).expect("facts.log");
    bytes[..8].copy_from_slice(b"APST0000");
    fs::write(&log, &bytes).expect("write stale header");

    let svc = service(2).with_store(&dir);
    let s = svc.store_stats();
    assert_eq!(s.refused_version, 1, "one event per refused file: {s:?}");
    assert_eq!(s.recovered_facts, 0, "{s:?}");
    // The other tiers are untouched and recover in full.
    assert!(s.recovered_loops > 0, "{s:?}");
    assert_eq!(s.recovered_results, 3, "{s:?}");
    drop(svc);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn unusable_directory_degrades_to_read_only_and_still_serves() {
    let dir = scratch("unusable");
    // A regular *file* where the store directory should be: creation
    // fails no matter the uid (chmod tricks don't bite under root).
    fs::write(&dir, b"not a directory").expect("plant blocking file");

    let svc = service(2).with_store(&dir);
    let reason = svc.store_read_only_reason().expect("degraded");
    assert!(
        reason.contains("cannot create store directory"),
        "structured reason: {reason}"
    );
    let batch = svc.compile_many(&suites());
    assert_eq!(batch.outcomes.len(), 3, "service still serves");
    let s = svc.store_stats();
    assert!(s.enabled && s.read_only, "{s:?}");
    assert_eq!(s.appended_records, 0, "read-only never writes: {s:?}");
    assert_eq!(s.append_errors, 0, "skip is not an error: {s:?}");
    drop(svc);
    let _ = fs::remove_file(&dir);
}

#[test]
fn two_services_sharing_a_dir_single_writer() {
    let dir = scratch("shared");
    let a = service(1).with_store(&dir);
    let b = service(1).with_store(&dir);
    let reason = b.store_read_only_reason().expect("b must be read-only");
    assert!(reason.contains("locked by live writer"), "{reason}");

    // Both serve; only a persists. Nothing interleaves in the logs.
    let batch_a = a.compile_many(&suites());
    let batch_b = b.compile_many(&suites());
    assert_eq!(batch_a.outcomes.len(), 3);
    assert_eq!(batch_b.outcomes.len(), 3);
    assert!(a.store_stats().appended_records > 0);
    assert_eq!(b.store_stats().appended_records, 0);
    drop(a);
    drop(b);

    // With both gone the lock is free and the logs are intact.
    let c = service(1).with_store(&dir);
    assert!(c.store_read_only_reason().is_none(), "lock released");
    let s = c.store_stats();
    assert_eq!(s.recovered_results, 3, "{s:?}");
    assert_eq!(s.recovery_refusals, 0, "no interleaved corruption: {s:?}");
    drop(c);
    let _ = fs::remove_dir_all(&dir);
}

/// A real `kill -9`: a daemon serving with a store dies without any
/// shutdown path — lock file left behind, logs ending wherever the OS
/// happened to flush. Recovery must salvage the served request and
/// steal the dead writer's lock.
#[test]
fn kill_nine_mid_serve_recovers_on_restart() {
    let dir = scratch("kill9");
    let src = &suites()[0].source;

    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_apar-serve"))
        .args(["--daemon", "--workers", "1", "--store"])
        .arg(&dir)
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn apar-serve daemon");
    {
        let stdin = child.stdin.as_mut().expect("stdin");
        write!(stdin, "SRC alpha {}\n{}", src.lines().count(), src).expect("send request");
        stdin.flush().expect("flush");
    }
    // One OK line means the request compiled and its records were
    // appended (persistence runs before the response is written).
    let mut line = String::new();
    BufReader::new(child.stdout.as_mut().expect("stdout"))
        .read_line(&mut line)
        .expect("read response");
    assert!(line.starts_with("OK "), "daemon answered: {line}");
    child.kill().expect("kill -9");
    let _ = child.wait();

    assert!(dir.join("lock").exists(), "the dead daemon left its lock");
    let svc = service(1).with_store(&dir);
    assert!(
        svc.store_read_only_reason().is_none(),
        "stale lock stolen: {:?}",
        svc.store_read_only_reason()
    );
    let s = svc.store_stats();
    assert_eq!(s.recovered_results, 1, "{s:?}");
    assert_eq!(s.recovery_refusals, 0, "{s:?}");
    let warm = svc.compile_one(suites().swap_remove(0));
    assert_eq!(warm.served, Served::CacheHit, "{:?}", warm.served);
    drop(svc);
    let _ = fs::remove_dir_all(&dir);
}

/// The batch CLI honors `--store`: a second invocation recovers the
/// first one's records, and a blocked store degrades with a structured
/// warning instead of failing the run.
#[test]
fn cli_store_flag_round_trips_and_degrades_gracefully() {
    let dir = scratch("cli");
    let suite_dir = scratch("cli_suites");
    fs::create_dir_all(&suite_dir).expect("suite dir");
    let suite_path = suite_dir.join("alpha.f");
    fs::write(&suite_path, &suites()[0].source).expect("write suite");

    let run = |store: &Path| {
        std::process::Command::new(env!("CARGO_BIN_EXE_apar-serve"))
            .args(["--workers", "1", "--store"])
            .arg(store)
            .arg(&suite_path)
            .output()
            .expect("run apar-serve")
    };
    let first = run(&dir);
    assert!(first.status.success(), "{first:?}");
    let second = run(&dir);
    assert!(second.status.success(), "{second:?}");
    let stderr = String::from_utf8_lossy(&second.stderr);
    let recovered_line = stderr
        .lines()
        .find(|l| l.contains("store recovered"))
        .unwrap_or_else(|| panic!("no recovery line in stderr: {stderr}"));
    assert!(
        recovered_line.contains("1 results"),
        "second run recovered the first run's result: {recovered_line}"
    );

    let blocked = scratch("cli_blocked");
    fs::write(&blocked, b"not a directory").expect("plant blocking file");
    let degraded = run(&blocked);
    assert!(degraded.status.success(), "degradation is not failure: {degraded:?}");
    let stderr = String::from_utf8_lossy(&degraded.stderr);
    assert!(
        stderr.contains("degraded to read-only"),
        "structured warning: {stderr}"
    );
    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&suite_dir);
    let _ = fs::remove_file(&blocked);
}

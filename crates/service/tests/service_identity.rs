//! Cache transparency: the service layer — worker pools, the shared
//! facts store, the result cache, dedup, eviction — is pure plumbing.
//! Every report it returns must be bit-identical to a plain
//! one-at-a-time `Compiler` compile, at every worker count and cache
//! temperature.

use apar_core::{Compiler, CompilerProfile};
use apar_service::{CompileService, Served, ServiceConfig, SuiteRequest};
use apar_workloads::{perfect, seismic, DataSize, Variant};

fn batch() -> Vec<SuiteRequest> {
    let seismic = seismic::full_suite(DataSize::Small, Variant::Serial);
    let perfect = &perfect::codes()[0];
    vec![
        SuiteRequest::new(seismic.name.clone(), seismic.source.clone()),
        SuiteRequest::new(perfect.name.clone(), perfect.source.clone()),
        // The dedup satellite: the same suite twice in one batch.
        SuiteRequest::new(format!("{}-again", seismic.name), seismic.source),
    ]
}

/// Reference: serial, service-free compiles of the same requests.
fn plain_signatures(reqs: &[SuiteRequest]) -> Vec<String> {
    let compiler = Compiler::new(CompilerProfile::polaris2008());
    reqs.iter()
        .map(|r| {
            compiler
                .compile_source_recovering(&r.name, &r.source)
                .report_signature()
        })
        .collect()
}

#[test]
fn concurrent_batches_match_serial_compiles_at_any_worker_count() {
    let reqs = batch();
    let reference = plain_signatures(&reqs);
    for workers in [1, 2, 8] {
        let service = CompileService::new(ServiceConfig {
            workers,
            ..ServiceConfig::default()
        });
        let out = service.compile_many(&reqs);
        let got: Vec<String> = out
            .outcomes
            .iter()
            .map(|o| o.artifact.signature())
            .collect();
        assert_eq!(got, reference, "workers={}", workers);
        // The duplicate SEISMIC is deduped, not recompiled or miscounted.
        assert_eq!(out.stats.cold, 2, "workers={}", workers);
        assert_eq!(out.stats.deduped, 1, "workers={}", workers);
        assert_eq!(out.outcomes[2].served, Served::Deduped);
    }
}

#[test]
fn warm_batches_are_bit_identical_to_cold() {
    let reqs = batch();
    let service = CompileService::new(ServiceConfig {
        workers: 4,
        ..ServiceConfig::default()
    });
    let cold = service.compile_many(&reqs);
    let warm = service.compile_many(&reqs);
    assert_eq!(warm.stats.cold, 0, "everything served from cache");
    assert!(warm.stats.result_hits >= 2);
    for (c, w) in cold.outcomes.iter().zip(&warm.outcomes) {
        assert_eq!(
            c.artifact.signature(),
            w.artifact.signature(),
            "warm {} diverged",
            w.name
        );
    }
}

#[test]
fn eviction_under_tiny_capacity_never_changes_reports() {
    let reqs = batch();
    let reference = plain_signatures(&reqs);
    // Facts store and result cache both squeezed to one entry: every
    // compile evicts its predecessor, so nothing is ever adopted — and
    // nothing may change.
    let service = CompileService::new(ServiceConfig {
        workers: 2,
        facts_entries: 1,
        facts_bytes: 1,
        result_entries: 1,
        ..ServiceConfig::default()
    });
    for round in 0..2 {
        let out = service.compile_many(&reqs);
        let got: Vec<String> = out
            .outcomes
            .iter()
            .map(|o| o.artifact.signature())
            .collect();
        assert_eq!(got, reference, "round {}", round);
    }
    let stats = service.cumulative_stats();
    assert!(
        stats.facts.evictions > 0 || stats.result_evictions > 0,
        "tiny capacity must actually evict: {:?}",
        stats
    );
}

#[test]
fn shared_facts_store_records_hits_across_clients() {
    // Two compiles of the same source through one service: the second
    // is a result-cache hit, so force distinct result keys by differing
    // whitespace-free name only... names are not keyed; instead disable
    // the result tier with a 1-entry cache and an interleaved batch so
    // the facts tier itself gets exercised.
    let seismic = seismic::full_suite(DataSize::Small, Variant::Serial);
    let service = CompileService::new(ServiceConfig {
        workers: 1,
        result_entries: 1,
        ..ServiceConfig::default()
    });
    let a = SuiteRequest::new("a", seismic.source.clone());
    let perfect = &perfect::codes()[0];
    let b = SuiteRequest::new("b", perfect.source.clone());
    service.compile_many(std::slice::from_ref(&a));
    service.compile_many(std::slice::from_ref(&b)); // evicts a's result
    let again = service.compile_many(std::slice::from_ref(&a));
    assert_eq!(again.stats.cold, 1, "result entry was evicted");
    // The per-loop incremental tier sits in front of the facts tier:
    // an unchanged recompile splices every loop's stored record, so
    // the facts themselves are never looked up again. Either counter
    // proves the shared store served the recompile.
    assert!(
        again.stats.facts.hits + again.stats.facts.loop_hits > 0,
        "recompile adopts shared analysis (facts or loop records): {:?}",
        again.stats
    );
    assert!(
        again.stats.facts.loop_hits > 0,
        "unchanged recompile splices loop records: {:?}",
        again.stats
    );
}

//! The long-lived daemon loop: a line-delimited request protocol.
//!
//! [`serve`] reads requests from any `BufRead` and writes one response
//! line per request to any `Write` — stdin/stdout in the `apar-serve`
//! binary, in-memory buffers in tests. The protocol:
//!
//! ```text
//! SRC <name> <nlines> [<deadline_ms>]
//!                       the next <nlines> lines are the suite source;
//!                       the optional third field is a per-request
//!                       wall-clock deadline in milliseconds
//! FILE <path>           compile the file at <path>
//! STATS                 one-line JSON of the service's lifetime stats
//! HEALTH                one-line JSON of queue depth, quarantine
//!                       counts, cache occupancy, and uptime
//! QUIT                  stop serving
//! ```
//!
//! Responses are exactly one line each: `OK <json>` for compiles and
//! stats, `ERR <reason>` for anything unserviceable, and
//! `REJECTED <reason>` when the service is overloaded (compile
//! commands only — `HEALTH`/`STATS`/`QUIT` always answer, so an
//! operator can watch an overloaded daemon drain). The loop is total
//! over arbitrary bytes: non-UTF-8 input is replaced lossily, unknown
//! commands and malformed headers answer `ERR` and the loop continues,
//! garbled source degrades to a compile with diagnostics (the
//! recovering front end), and any panic that still escapes a request is
//! contained by the service's sandbox. One hostile request degrades one
//! response, never the daemon.

use std::io::{self, BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};

use apar_core::jsonio::{Json, ToJson};

use crate::{CompileService, SuiteArtifact, SuiteOutcome, SuiteRequest};

/// Upper bound on one `SRC` request's line count — a hostile header
/// like `SRC x 99999999999` must not stall the loop reading forever.
pub const MAX_SRC_LINES: usize = 100_000;

/// What one [`serve`] loop did (for tests and logging).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Request lines handled (blank lines excluded).
    pub requests: usize,
    /// Requests that ran or looked up a compile.
    pub compiled: usize,
    /// Requests answered with `ERR`.
    pub errors: usize,
    /// Compile requests answered `REJECTED` because the service was
    /// overloaded (bodies still drained, nothing compiled).
    pub rejected: usize,
    /// True when the loop ended on `QUIT` rather than EOF.
    pub quit: bool,
}

/// The `HEALTH` answer: everything an operator needs to see whether an
/// overloaded daemon is draining.
fn health_line(service: &CompileService) -> String {
    let cfg = service.config();
    let mut fields = vec![
        ("pending", service.pending().to_json()),
        ("peak_pending", service.peak_pending().to_json()),
        ("max_pending", cfg.max_pending.to_json()),
        ("overloaded", Json::Bool(service.overloaded())),
        ("quarantined_suites", service.quarantined_suites().to_json()),
        (
            "quarantined_facts",
            service.facts_store().quarantined_count().to_json(),
        ),
        ("result_entries", service.result_cache_len().to_json()),
        (
            "facts_entries",
            service.facts_store().stats().entries.to_json(),
        ),
        (
            "loop_entries",
            service.facts_store().stats().loop_entries.to_json(),
        ),
    ];
    // The store block is the same canonical field list STATS and batch
    // reports use ([`crate::store::StoreStats::fields`]) — one source,
    // no drift between the three surfaces.
    fields.extend(service.store_stats().fields());
    fields.push(("uptime_s", service.uptime_s().to_json()));
    Json::Obj(fields).render_compact()
}

fn outcome_line(o: &SuiteOutcome) -> String {
    let (loops, parallelized, diags, dropped) = match o.artifact.compile() {
        Some(r) => (
            r.loops.len(),
            r.loops.iter().filter(|l| l.parallelized).count(),
            r.report.diags.len(),
            r.report.dropped_units.len(),
        ),
        None => (0, 0, 0, 0),
    };
    let mut fields = vec![
        ("name", Json::Str(o.name.clone())),
        ("served", Json::Str(o.served.label().to_string())),
        ("loops", loops.to_json()),
        ("parallelized", parallelized.to_json()),
        ("diags", diags.to_json()),
        ("dropped_units", dropped.to_json()),
        ("wall_s", o.wall_s.to_json()),
    ];
    if let SuiteArtifact::Failed(msg) = &*o.artifact {
        fields.push(("failed", Json::Str(msg.clone())));
    }
    if let SuiteArtifact::Emitted(e) = &*o.artifact {
        fields.push(("emitted", e.emitted.to_json()));
        fields.push(("reparse_diags", e.reparse_diags.len().to_json()));
    }
    Json::Obj(fields).render_compact()
}

/// Read one raw line (any bytes) as lossy UTF-8 without the trailing
/// newline. `None` at EOF.
fn read_line<R: BufRead>(input: &mut R) -> io::Result<Option<String>> {
    let mut buf = Vec::new();
    let n = input.read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(None);
    }
    while matches!(buf.last(), Some(b'\n') | Some(b'\r')) {
        buf.pop();
    }
    Ok(Some(String::from_utf8_lossy(&buf).into_owned()))
}

/// Run the daemon loop until `QUIT` or EOF. Never panics, never exits
/// early on hostile input; I/O errors on the transport itself are the
/// only way out besides the protocol.
pub fn serve<R: BufRead, W: Write>(
    service: &CompileService,
    mut input: R,
    mut out: W,
) -> io::Result<ServeSummary> {
    let mut summary = ServeSummary::default();
    while let Some(line) = read_line(&mut input)? {
        let line = line.trim().to_string();
        if line.is_empty() {
            continue;
        }
        summary.requests += 1;
        let mut parts = line.splitn(3, ' ');
        let cmd = parts.next().unwrap_or("");
        let reply = match cmd {
            "QUIT" => {
                summary.quit = true;
                writeln!(out, "OK bye")?;
                break;
            }
            "STATS" => format!("OK {}", service.cumulative_stats().to_json().render_compact()),
            "HEALTH" => format!("OK {}", health_line(service)),
            "SRC" => {
                let name = parts.next().unwrap_or("").to_string();
                // The tail is `<nlines> [<deadline_ms>]`.
                let mut tail = parts.next().unwrap_or("").split_whitespace();
                let nlines = tail.next().and_then(|s| s.parse::<usize>().ok());
                let deadline = tail
                    .next()
                    .and_then(|s| s.parse::<u64>().ok())
                    .map(std::time::Duration::from_millis);
                match (name.is_empty(), nlines) {
                    (true, _) | (_, None) => {
                        summary.errors += 1;
                        "ERR usage: SRC <name> <nlines> [<deadline_ms>]".to_string()
                    }
                    (_, Some(n)) if n > MAX_SRC_LINES => {
                        summary.errors += 1;
                        format!("ERR oversized request ({} lines > {})", n, MAX_SRC_LINES)
                    }
                    (_, Some(n)) => {
                        // The body must be drained either way — a
                        // rejected request must not desync the protocol.
                        let mut src = String::new();
                        for _ in 0..n {
                            match read_line(&mut input)? {
                                Some(l) => {
                                    src.push_str(&l);
                                    src.push('\n');
                                }
                                None => break, // EOF mid-body: compile what arrived
                            }
                        }
                        if service.overloaded() {
                            summary.rejected += 1;
                            format!("REJECTED overload pending={}", service.pending())
                        } else {
                            summary.compiled += 1;
                            let mut req = SuiteRequest::new(name, src);
                            if let Some(d) = deadline {
                                req = req.with_deadline(d);
                            }
                            respond_compile(service, req)
                        }
                    }
                }
            }
            "FILE" => {
                let path: String = parts.collect::<Vec<_>>().join(" ");
                if path.is_empty() {
                    summary.errors += 1;
                    "ERR usage: FILE <path>".to_string()
                } else if service.overloaded() {
                    summary.rejected += 1;
                    format!("REJECTED overload pending={}", service.pending())
                } else {
                    match std::fs::read(&path) {
                        Ok(bytes) => {
                            let src = String::from_utf8_lossy(&bytes).into_owned();
                            let name = std::path::Path::new(&path)
                                .file_stem()
                                .map(|s| s.to_string_lossy().into_owned())
                                .unwrap_or_else(|| path.clone());
                            summary.compiled += 1;
                            respond_compile(service, SuiteRequest::new(name, src))
                        }
                        Err(e) => {
                            summary.errors += 1;
                            format!("ERR read {}: {}", path, e)
                        }
                    }
                }
            }
            _ => {
                summary.errors += 1;
                format!("ERR unknown command: {}", cmd)
            }
        };
        writeln!(out, "{}", reply)?;
        out.flush()?;
    }
    Ok(summary)
}

/// One compile request, double-sandboxed: the service already contains
/// panics per suite, and this belt-and-suspenders guard keeps even a
/// panic in outcome formatting from taking the loop down.
fn respond_compile(service: &CompileService, req: SuiteRequest) -> String {
    catch_unwind(AssertUnwindSafe(|| {
        let outcome = service.compile_one(req);
        format!("OK {}", outcome_line(&outcome))
    }))
    .unwrap_or_else(|_| "ERR internal: request panicked".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServiceConfig;

    fn run(input: &[u8]) -> (ServeSummary, String) {
        let service = CompileService::new(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        let mut out = Vec::new();
        let summary = serve(&service, input, &mut out).expect("io");
        (summary, String::from_utf8_lossy(&out).into_owned())
    }

    #[test]
    fn serves_a_src_request_and_quits() {
        let input = b"SRC tiny 7\nPROGRAM MAIN\nREAL A(10)\nINTEGER I\nDO I = 1, 10\nA(I) = 1.0\nENDDO\nEND\nQUIT\n";
        let (summary, out) = run(input);
        assert_eq!(summary.compiled, 1);
        assert!(summary.quit);
        assert!(out.contains("\"name\":\"tiny\""), "{}", out);
        assert!(out.contains("\"diags\":0"), "clean dialect parses: {}", out);
        assert!(out.contains("OK bye"), "{}", out);
    }

    #[test]
    fn hostile_lines_answer_err_and_the_loop_lives() {
        let input: Vec<u8> = [
            b"GARBAGE whatever\n".as_slice(),
            &[0xff, 0xfe, 0x00, b'\n'],
            b"SRC\n",
            b"SRC x notanumber\n",
            b"SRC huge 99999999999\n",
            b"STATS\n",
            b"QUIT\n",
        ]
        .concat();
        let (summary, out) = run(&input);
        assert!(summary.quit, "daemon reached QUIT alive:\n{}", out);
        assert_eq!(summary.errors, 5, "{}", out);
        assert!(out.contains("OK {"), "stats still served: {}", out);
    }

    #[test]
    fn eof_mid_body_still_compiles_what_arrived() {
        let input = b"SRC cut 100\n      PROGRAM MAIN\n      END PROGRAM\n";
        let (summary, out) = run(input);
        assert_eq!(summary.compiled, 1);
        assert!(!summary.quit);
        assert!(out.contains("\"name\":\"cut\""), "{}", out);
    }

    #[test]
    fn health_answers_compact_json() {
        let (summary, out) = run(b"HEALTH\nQUIT\n");
        assert_eq!(summary.errors, 0);
        for field in [
            "\"pending\":0",
            "\"max_pending\":64",
            "\"overloaded\":false",
            "\"quarantined_suites\":0",
            "\"store_enabled\":false",
            "\"recovery_refusals\":0",
            "\"store_bytes\":0",
            "\"uptime_s\":",
        ] {
            assert!(out.contains(field), "{field} missing from {out}");
        }
    }

    #[test]
    fn src_deadline_field_expires_the_compile() {
        let input = b"SRC slow 7 0\nPROGRAM MAIN\nREAL A(10)\nINTEGER I\nDO I = 1, 10\nA(I) = 1.0\nENDDO\nEND\nQUIT\n";
        let (summary, out) = run(input);
        assert_eq!(summary.compiled, 1);
        assert!(
            out.contains("\"served\":\"expired\""),
            "0ms deadline expires structurally: {}",
            out
        );
    }

    #[test]
    fn overloaded_daemon_rejects_compiles_but_still_reports_health() {
        let service = CompileService::new(ServiceConfig {
            workers: 1,
            high_watermark: 4,
            low_watermark: 1,
            ..ServiceConfig::default()
        });
        let hold = service.hold_capacity(5);
        let input: &[u8] =
            b"SRC a 2\nPROGRAM MAIN\nEND\nFILE /nonexistent\nHEALTH\nSTATS\nQUIT\n";
        let mut out = Vec::new();
        let summary = serve(&service, input, &mut out).expect("io");
        let out = String::from_utf8_lossy(&out);
        assert_eq!(summary.rejected, 2, "{}", out);
        assert_eq!(summary.compiled, 0);
        assert!(out.contains("REJECTED overload pending=5"), "{}", out);
        assert!(out.contains("\"overloaded\":true"), "{}", out);
        assert!(out.contains("OK {"), "health/stats still answer: {}", out);
        drop(hold);

        // Recovered: the same request now compiles (the rejected SRC
        // body never desynced the protocol).
        let input: &[u8] = b"SRC a 2\nPROGRAM MAIN\nEND\nHEALTH\nQUIT\n";
        let mut out = Vec::new();
        let summary = serve(&service, input, &mut out).expect("io");
        let out = String::from_utf8_lossy(&out);
        assert_eq!(summary.rejected, 0);
        assert_eq!(summary.compiled, 1, "{}", out);
        assert!(out.contains("\"overloaded\":false"), "{}", out);
    }
}

//! `apar-serve` — the compile service from the command line.
//!
//! Batch mode compiles suite files (or a manifest) through one shared
//! [`CompileService`], writes emitted artifacts next to a stats JSON,
//! and prints a per-suite table. Daemon mode serves the line protocol
//! over stdin/stdout until `QUIT` or EOF.
//!
//! ```text
//! apar-serve [OPTIONS] <suite.f>...
//! apar-serve [OPTIONS] --manifest <file>    # lines: <name>=<path>
//! apar-serve [OPTIONS] --daemon
//!
//! OPTIONS:
//!   --workers <N>       worker pool width (default 4)
//!   --profile <name>    polaris2008 (default) or full
//!   --emit              run the source-to-source backend too
//!   --out <dir>         write emitted artifacts as <dir>/<name>.par.f
//!   --stats <file>      write batch stats JSON (default: stdout summary only)
//!   --deadline-ms <N>   wall-clock deadline per suite (expired compiles
//!                       answer structurally, they are never half-done)
//!   --lenient           serve unreadable suites as empty source instead
//!                       of failing the invocation
//!   --store <dir>       persist the cache tiers to <dir> and recover
//!                       them on startup; an unusable or already-locked
//!                       directory degrades to read-only with a
//!                       structured warning, never an error
//! ```
//!
//! Exit codes are structured for scripting: `0` success, `1` transport
//! or output-write failure, `2` usage error, `3` unreadable input
//! (suite or manifest) without `--lenient`. Hostile *content* is never
//! an error — the recovering front end turns garbled sources into
//! diagnostics — only unreadable *paths* are.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use apar_core::jsonio::ToJson;
use apar_core::CompilerProfile;
use apar_service::daemon::serve;
use apar_service::{CompileService, ServiceConfig, SuiteArtifact, SuiteRequest};

struct Args {
    workers: usize,
    profile: CompilerProfile,
    emit: bool,
    out_dir: Option<PathBuf>,
    stats_path: Option<PathBuf>,
    daemon: bool,
    manifest: Option<PathBuf>,
    suites: Vec<PathBuf>,
    deadline: Option<std::time::Duration>,
    lenient: bool,
    store: Option<PathBuf>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: apar-serve [--workers N] [--profile polaris2008|full] [--emit] \
         [--out DIR] [--stats FILE] [--deadline-ms N] [--lenient] [--store DIR] \
         (<suite.f>... | --manifest FILE | --daemon)"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut args = Args {
        workers: 4,
        profile: CompilerProfile::polaris2008(),
        emit: false,
        out_dir: None,
        stats_path: None,
        daemon: false,
        manifest: None,
        suites: Vec::new(),
        deadline: None,
        lenient: false,
        store: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workers" => {
                args.workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(usage)?;
            }
            "--profile" => match it.next().as_deref() {
                Some("polaris2008") => args.profile = CompilerProfile::polaris2008(),
                Some("full") => args.profile = CompilerProfile::full(),
                _ => return Err(usage()),
            },
            "--emit" => args.emit = true,
            "--out" => args.out_dir = Some(PathBuf::from(it.next().ok_or_else(usage)?)),
            "--stats" => args.stats_path = Some(PathBuf::from(it.next().ok_or_else(usage)?)),
            "--daemon" => args.daemon = true,
            "--manifest" => args.manifest = Some(PathBuf::from(it.next().ok_or_else(usage)?)),
            "--deadline-ms" => {
                let ms: u64 = it.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?;
                args.deadline = Some(std::time::Duration::from_millis(ms));
            }
            "--lenient" => args.lenient = true,
            "--store" => args.store = Some(PathBuf::from(it.next().ok_or_else(usage)?)),
            "--help" | "-h" => return Err(usage()),
            s if s.starts_with("--") => {
                eprintln!("apar-serve: unknown flag: {}", s);
                return Err(usage());
            }
            _ => args.suites.push(PathBuf::from(a)),
        }
    }
    if !args.daemon && args.manifest.is_none() && args.suites.is_empty() {
        return Err(usage());
    }
    Ok(args)
}

fn stem_of(path: &Path) -> String {
    path.file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string())
}

/// Load requests from explicit paths and/or a `<name>=<path>` manifest.
/// Every unreadable entry is diagnosed on stderr and counted; strict
/// mode (the default) turns any count into exit 3, `--lenient` serves
/// the entry as empty source instead (the recovering compiler reports
/// it rather than the CLI dying).
fn load_requests(args: &Args) -> (Vec<SuiteRequest>, usize) {
    let mut reqs = Vec::new();
    let io_errors = std::cell::Cell::new(0usize);
    let mut push = |name: String, path: &Path| {
        let src = match std::fs::read(path) {
            Ok(bytes) => String::from_utf8_lossy(&bytes).into_owned(),
            Err(e) => {
                io_errors.set(io_errors.get() + 1);
                let fate = if args.lenient {
                    "serving empty source"
                } else {
                    "strict mode, will fail"
                };
                eprintln!("apar-serve: {}: {} ({})", path.display(), e, fate);
                String::new()
            }
        };
        let mut req = SuiteRequest::new(name, src);
        if let Some(d) = args.deadline {
            req = req.with_deadline(d);
        }
        reqs.push(req);
    };
    if let Some(manifest) = &args.manifest {
        match std::fs::read_to_string(manifest) {
            Ok(text) => {
                for line in text.lines() {
                    let line = line.trim();
                    if line.is_empty() || line.starts_with('#') {
                        continue;
                    }
                    match line.split_once('=') {
                        Some((name, path)) => {
                            push(name.trim().to_string(), Path::new(path.trim()))
                        }
                        None => push(stem_of(Path::new(line)), Path::new(line)),
                    }
                }
            }
            Err(e) => {
                io_errors.set(io_errors.get() + 1);
                eprintln!("apar-serve: manifest {}: {}", manifest.display(), e);
            }
        }
    }
    for p in &args.suites {
        push(stem_of(p), p);
    }
    (reqs, io_errors.get())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(code) => return code,
    };
    let mut service = CompileService::new(ServiceConfig {
        profile: args.profile.clone(),
        workers: args.workers,
        emit: args.emit,
        ..ServiceConfig::default()
    });
    if let Some(dir) = &args.store {
        service = service.with_store(dir);
        if let Some(reason) = service.store_read_only_reason() {
            // Structured, greppable degradation notice: the run still
            // serves (and still recovers), it just won't persist.
            eprintln!(
                "apar-serve: store {} degraded to read-only: {}",
                dir.display(),
                reason
            );
        }
        let s = service.store_stats();
        eprintln!(
            "apar-serve: store recovered {} facts, {} loops, {} results ({} refusals)",
            s.recovered_facts, s.recovered_loops, s.recovered_results, s.recovery_refusals
        );
    }
    let service = service;

    if args.daemon {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        return match serve(&service, stdin.lock(), stdout.lock()) {
            Ok(summary) => {
                eprintln!(
                    "apar-serve: {} requests, {} compiled, {} errors, {} rejected",
                    summary.requests, summary.compiled, summary.errors, summary.rejected
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("apar-serve: transport error: {}", e);
                ExitCode::FAILURE
            }
        };
    }

    let (reqs, io_errors) = load_requests(&args);
    if io_errors > 0 && !args.lenient {
        eprintln!(
            "apar-serve: {} unreadable input(s); rerun with --lenient to serve them as empty",
            io_errors
        );
        return ExitCode::from(3);
    }
    let batch = service.compile_many(&reqs);

    println!(
        "{:<16} {:>6} {:>8} {:>8} {:>6} {:>10}",
        "suite", "served", "loops", "par", "diags", "wall_s"
    );
    for o in &batch.outcomes {
        let (loops, par, diags) = match o.artifact.compile() {
            Some(r) => (
                r.loops.len(),
                r.loops.iter().filter(|l| l.parallelized).count(),
                r.report.diags.len(),
            ),
            None => (0, 0, 0),
        };
        println!(
            "{:<16} {:>6} {:>8} {:>8} {:>6} {:>10.4}",
            o.name,
            o.served.label(),
            loops,
            par,
            diags,
            o.wall_s
        );
    }
    println!(
        "{} suites in {:.3}s ({:.1}/s): {} cold, {} hits, {} deduped, {} expired; \
         facts {}h/{}m/{}r",
        batch.stats.suites,
        batch.stats.wall_s,
        batch.stats.suites_per_s,
        batch.stats.cold,
        batch.stats.result_hits,
        batch.stats.deduped,
        batch.stats.deadline_expired,
        batch.stats.facts.hits,
        batch.stats.facts.misses,
        batch.stats.facts.refusals,
    );

    let mut write_failures = 0usize;
    if let Some(dir) = &args.out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("apar-serve: create {}: {}", dir.display(), e);
            write_failures += 1;
        }
        for o in &batch.outcomes {
            if let SuiteArtifact::Emitted(e) = &*o.artifact {
                let path = dir.join(format!("{}.par.f", o.name));
                match std::fs::File::create(&path).and_then(|mut f| {
                    f.write_all(e.source.as_bytes())
                }) {
                    Ok(()) => println!("wrote {}", path.display()),
                    Err(err) => {
                        eprintln!("apar-serve: write {}: {}", path.display(), err);
                        write_failures += 1;
                    }
                }
            }
        }
    }

    if let Some(path) = &args.stats_path {
        let json = batch.stats.to_json().render();
        match std::fs::write(path, json + "\n") {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("apar-serve: write {}: {}", path.display(), e);
                write_failures += 1;
            }
        }
    }
    if write_failures > 0 {
        eprintln!("apar-serve: {} output write failure(s)", write_failures);
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

//! Compile-as-a-service: batch and daemon compilation over the autopar
//! pipeline.
//!
//! ComPar-style source-to-source auto-parallelizers are run as batch
//! services over many foreign codes; this crate is that layer for the
//! reproduction. A [`CompileService`] accepts batches of named MiniFort
//! suites ([`CompileService::compile_many`]), fans compiles out across a
//! bounded worker pool, and keeps two caches alive *across* compiles:
//!
//! * a shared [`SharedFactsStore`] (the `AnalysisCache` promoted from
//!   per-compile to cross-compile), keyed by the full build identity —
//!   capabilities, op budget, base interner, resolved-program
//!   fingerprint — so adopting an entry can never change a report;
//! * a suite-level **result cache** keyed by raw source bytes plus the
//!   compile-relevant profile identity (everything except `threads`,
//!   which reports are invariant to), so recompiling an already-seen
//!   suite is a lookup, not a compile.
//!
//! Both caches are LRU-bounded; eviction costs rebuild time, never
//! correctness. Caching never changes what the service answers: two
//! batches differing only in cache temperature, worker width, or
//! arrival order produce bit-identical per-suite reports
//! ([`CompileResult::report_signature`] equality — pinned by this
//! crate's tests).
//!
//! Containment: every suite compiles through the recovering front end
//! inside a panic sandbox, so one garbled request degrades exactly one
//! response — the batch API always returns one [`SuiteOutcome`] per
//! request, and the daemon loop ([`daemon::serve`]) never dies on
//! hostile input.
//!
//! Resilience: every request can carry a wall-clock **deadline**
//! (cooperatively cancelled at pass checkpoints —
//! [`Served::DeadlineExpired`]); admission is bounded by a pending
//! queue with an explicit **shed policy** ([`Served::Rejected`]) and a
//! high/low **watermark** pair that also picks a graceful
//! **degradation tier** (full → facts-only → parse-only,
//! [`Served::Degraded`]); and suites (or analysis fingerprints) whose
//! builds crash-loop are **quarantined** with strike counting and
//! exponential backoff ([`Served::Quarantined`]). Only full,
//! non-degraded responses enter the result cache, so cached answers
//! stay bit-identical to plain compiles.

pub mod daemon;
pub mod store;

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use apar_analysis::{
    caps_bits, caps_from_bits, rebuild_facts, FactsProvenance, SharedFactsStore, SharedStats,
};
use apar_core::jsonio::{Json, ToJson};
use apar_core::{
    CancelToken, CompileResult, Compiler, CompilerProfile, DegradeTier, EmitResult, SplicedLoop,
};

pub use store::{PersistentStore, StoreFaults, StoreStats, Tier};

/// One named compilation request.
#[derive(Clone, Debug)]
pub struct SuiteRequest {
    pub name: String,
    pub source: String,
    /// Wall-clock budget for this request. The compile checks it
    /// cooperatively at pass checkpoints; expiry yields a structured
    /// [`Served::DeadlineExpired`] outcome carrying whatever per-loop
    /// reports completed. `None` never expires.
    pub deadline: Option<Duration>,
}

impl SuiteRequest {
    pub fn new(name: impl Into<String>, source: impl Into<String>) -> Self {
        SuiteRequest {
            name: name.into(),
            source: source.into(),
            deadline: None,
        }
    }

    /// This request with a wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// Which pending compiles to shed when a batch would overflow the
/// bounded queue.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Shed the earliest requests in the batch (oldest work is most
    /// likely to have missed its usefulness window).
    #[default]
    OldestFirst,
    /// Shed the largest sources first (most pool time recovered per
    /// rejection); ties break toward the earlier request.
    LargestFirst,
}

/// Everything that bounds a [`CompileService`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Compiler profile every suite is compiled under.
    pub profile: CompilerProfile,
    /// Worker pool width for one batch (1 = fully sequential; reports
    /// are bit-identical at every value).
    pub workers: usize,
    /// Also run the source-to-source backend and keep the emitted
    /// artifact ([`SuiteArtifact::Emitted`]).
    pub emit: bool,
    /// Shared facts store: maximum retained entries.
    pub facts_entries: usize,
    /// Shared facts store: approximate byte bound (printed-program
    /// length as the cost proxy).
    pub facts_bytes: usize,
    /// Suite result cache: maximum retained entries.
    pub result_entries: usize,
    /// Bounded pending queue: a batch whose compiles would push the
    /// pending depth past this is shed down to fit
    /// ([`Served::Rejected`]).
    pub max_pending: usize,
    /// Which requests get shed on overflow.
    pub shed: ShedPolicy,
    /// Pending depth at which the service reports overload (daemon
    /// requests are rejected) and compiles degrade to parse-only.
    pub high_watermark: usize,
    /// Pending depth the service must drain to before overload clears
    /// (hysteresis — the daemon recovers instead of thrashing at the
    /// boundary). Between low and high, compiles run facts-only.
    pub low_watermark: usize,
    /// Failed/panicking compiles of one suite before it is quarantined
    /// (answered from the ledger without compiling). 0 disables both
    /// the suite quarantine and the facts-store quarantine.
    pub quarantine_strikes: u32,
    /// Base quarantine duration in milliseconds; doubles per strike
    /// past the limit.
    pub quarantine_backoff_ms: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            profile: CompilerProfile::polaris2008(),
            workers: 4,
            emit: false,
            facts_entries: 256,
            facts_bytes: 64 << 20,
            result_entries: 256,
            max_pending: 64,
            shed: ShedPolicy::OldestFirst,
            high_watermark: 48,
            low_watermark: 24,
            quarantine_strikes: 3,
            quarantine_backoff_ms: 250,
        }
    }
}

/// How a suite in a batch was served.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Served {
    /// Compiled from scratch (possibly adopting shared analysis facts).
    Cold,
    /// Answered from the cross-batch result cache — no compile ran.
    CacheHit,
    /// Duplicate of an earlier suite in the *same* batch; compiled once,
    /// result shared. Counted separately from hits and misses.
    Deduped,
    /// The request's wall-clock deadline expired mid-compile; the
    /// artifact carries the partial report (completed loops plus a
    /// `DeadlineExpired` skip ledger). Not cached.
    DeadlineExpired,
    /// Shed by admission control: the pending queue was full. No
    /// compile ran.
    Rejected,
    /// The suite (or its analysis fingerprint) is quarantined after
    /// repeated failed builds; answered from the strike ledger (or a
    /// report whose loops were refused) without burning the pool.
    Quarantined,
    /// Compiled at a degraded tier (facts-only or parse-only) under
    /// overload pressure. The artifact says which tier. Not cached.
    Degraded,
}

impl Served {
    pub fn label(&self) -> &'static str {
        match self {
            Served::Cold => "cold",
            Served::CacheHit => "hit",
            Served::Deduped => "dedup",
            Served::DeadlineExpired => "expired",
            Served::Rejected => "rejected",
            Served::Quarantined => "quarantined",
            Served::Degraded => "degraded",
        }
    }

    /// True for the classes whose reports are required to be
    /// bit-identical to a plain `Compiler` compile of the same source
    /// (the chaos harness's identity gate).
    pub fn full_fidelity(&self) -> bool {
        matches!(self, Served::Cold | Served::CacheHit | Served::Deduped)
    }
}

/// What the service produced for one suite.
#[derive(Debug)]
pub enum SuiteArtifact {
    /// Analysis + transformation only (`ServiceConfig::emit == false`).
    Compiled(Box<CompileResult>),
    /// Full pipeline through the source-to-source backend.
    Emitted(Box<EmitResult>),
    /// A panic escaped the recovering compiler — contained here so the
    /// batch (and the daemon) survive. Should never happen; the message
    /// is kept for the response.
    Failed(String),
    /// Shed by admission control before any compile ran.
    Rejected {
        /// Why (queue depth and bound, for the response).
        reason: String,
    },
    /// Answered from the suite quarantine ledger: this source has
    /// failed `strikes` times and its backoff has not lapsed.
    Quarantined {
        /// Strikes recorded against the suite.
        strikes: u32,
    },
}

impl SuiteArtifact {
    /// The compile result, when one exists.
    pub fn compile(&self) -> Option<&CompileResult> {
        match self {
            SuiteArtifact::Compiled(r) => Some(r),
            SuiteArtifact::Emitted(e) => Some(&e.result),
            SuiteArtifact::Failed(_)
            | SuiteArtifact::Rejected { .. }
            | SuiteArtifact::Quarantined { .. } => None,
        }
    }

    /// The identity string of the underlying report (empty for
    /// failures) — what the cache-transparency tests compare.
    pub fn signature(&self) -> String {
        self.compile().map(|r| r.report_signature()).unwrap_or_default()
    }

    /// Frontend diagnostics the recovering compile accumulated.
    pub fn diag_count(&self) -> usize {
        self.compile().map_or(0, |r| r.report.diags.len())
    }
}

/// One per-request answer from [`CompileService::compile_many`].
#[derive(Debug)]
pub struct SuiteOutcome {
    pub name: String,
    pub served: Served,
    /// Wall seconds this suite cost the service (near zero for
    /// `CacheHit`/`Deduped`).
    pub wall_s: f64,
    /// The artifact — shared (`Arc`) between deduplicated requests.
    pub artifact: Arc<SuiteArtifact>,
}

/// Service counters for one batch (or, from
/// [`CompileService::cumulative_stats`], the service's lifetime).
#[derive(Clone, Debug)]
pub struct ServiceStats {
    /// Requests answered.
    pub suites: usize,
    /// Requests that ran a compile.
    pub cold: usize,
    /// Requests answered from the result cache.
    pub result_hits: usize,
    /// In-batch duplicates that shared an owner's compile.
    pub deduped: usize,
    /// Requests whose compile panicked (contained as
    /// [`SuiteArtifact::Failed`]).
    pub failed: usize,
    /// Requests shed by admission control.
    pub rejected: usize,
    /// Requests whose deadline expired mid-compile.
    pub deadline_expired: usize,
    /// Requests refused by a quarantine (suite ledger or facts store).
    pub quarantined: usize,
    /// Requests compiled at a degraded tier.
    pub degraded: usize,
    /// Deepest the pending queue has ever been (must never exceed
    /// `max_pending` — the chaos harness's bound gate).
    pub pending_peak: usize,
    /// Suites currently under active quarantine.
    pub quarantined_suites: usize,
    /// Result-cache entries evicted by the LRU bound.
    pub result_evictions: u64,
    /// Shared facts-store counters: hits, misses, structured
    /// [`CacheRefusal`](SharedStats::refusals) count (budget-tripped or
    /// panicked builds the cache refused to retain — *not* misses),
    /// evictions, and residency gauges.
    pub facts: SharedStats,
    /// Durable-store counters (zeroed/disabled when no store is
    /// attached). Batch stats carry the delta for the batch; cumulative
    /// stats carry lifetime values including recovery.
    pub store: StoreStats,
    /// Wall seconds for the whole batch.
    pub wall_s: f64,
    /// Aggregate throughput (`suites / wall_s`).
    pub suites_per_s: f64,
    /// Per-suite wall seconds, in request order.
    pub per_suite_wall_s: Vec<(String, f64)>,
}

impl ToJson for ServiceStats {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("suites", self.suites.to_json()),
            ("cold", self.cold.to_json()),
            ("result_hits", self.result_hits.to_json()),
            ("deduped", self.deduped.to_json()),
            ("failed", self.failed.to_json()),
            ("rejected", self.rejected.to_json()),
            ("deadline_expired", self.deadline_expired.to_json()),
            ("quarantined", self.quarantined.to_json()),
            ("degraded", self.degraded.to_json()),
            ("pending_peak", self.pending_peak.to_json()),
            ("quarantined_suites", self.quarantined_suites.to_json()),
            ("result_evictions", self.result_evictions.to_json()),
            ("facts_hits", self.facts.hits.to_json()),
            ("facts_misses", self.facts.misses.to_json()),
            ("facts_refusals", self.facts.refusals.to_json()),
            ("facts_evictions", self.facts.evictions.to_json()),
            ("facts_entries", self.facts.entries.to_json()),
            ("facts_approx_bytes", self.facts.approx_bytes.to_json()),
            ("facts_quarantine_hits", self.facts.quarantine_hits.to_json()),
            ("facts_quarantined", self.facts.quarantined.to_json()),
            ("loop_hits", self.facts.loop_hits.to_json()),
            ("loop_misses", self.facts.loop_misses.to_json()),
            ("loop_refusals", self.facts.loop_refusals.to_json()),
            ("loop_entries", self.facts.loop_entries.to_json()),
            ("wall_s", self.wall_s.to_json()),
            ("suites_per_s", self.suites_per_s.to_json()),
            ("per_suite_wall_s", self.per_suite_wall_s.to_json()),
        ];
        // One source of truth for store fields: `StoreStats::fields`
        // renders here, in the daemon's STATS answer (same path), and
        // in its HEALTH reply — the three reports cannot disagree.
        fields.extend(self.store.fields());
        Json::Obj(fields)
    }
}

/// A completed batch: one outcome per request, in request order, plus
/// the batch-scoped stats.
#[derive(Debug)]
pub struct Batch {
    pub outcomes: Vec<SuiteOutcome>,
    pub stats: ServiceStats,
}

/// LRU-bounded suite result cache.
struct ResultCache {
    map: HashMap<u64, (Arc<SuiteArtifact>, u64)>,
    tick: u64,
    cap: usize,
    evictions: u64,
}

impl ResultCache {
    fn new(cap: usize) -> Self {
        ResultCache {
            map: HashMap::new(),
            tick: 0,
            cap: cap.max(1),
            evictions: 0,
        }
    }

    fn get(&mut self, key: u64) -> Option<Arc<SuiteArtifact>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(&key).map(|(v, last)| {
            *last = tick;
            Arc::clone(v)
        })
    }

    fn insert(&mut self, key: u64, value: Arc<SuiteArtifact>) {
        self.tick += 1;
        self.map.insert(key, (value, self.tick));
        while self.map.len() > self.cap {
            let oldest = self
                .map
                .iter()
                .min_by_key(|(_, (_, last))| *last)
                .map(|(k, _)| *k)
                .expect("nonempty over cap");
            self.map.remove(&oldest);
            self.evictions += 1;
        }
    }
}

/// One suite's strike record in the service quarantine ledger.
#[derive(Clone, Copy, Debug)]
struct SuiteStrikes {
    strikes: u32,
    /// Active quarantine expiry; `None` = probation (strikes kept, one
    /// compile allowed) or not yet quarantined.
    until: Option<Instant>,
    tick: u64,
}

/// The bounded suite quarantine ledger (keys are suite keys).
#[derive(Default)]
struct SuiteQuarantine {
    map: HashMap<u64, SuiteStrikes>,
    tick: u64,
}

/// RAII occupancy of pending-queue slots without running compiles —
/// how tests and the chaos harness simulate concurrent load
/// deterministically. Dropping the hold releases the slots.
pub struct AdmissionHold<'a> {
    service: &'a CompileService,
    n: usize,
}

impl Drop for AdmissionHold<'_> {
    fn drop(&mut self) {
        self.service.pending.fetch_sub(self.n, Ordering::SeqCst);
    }
}

/// The service: a worker pool plus the two cross-compile caches.
///
/// Thread-safe (`&self` methods); wrap in an `Arc` to share between a
/// daemon loop and library callers.
pub struct CompileService {
    config: ServiceConfig,
    facts: Arc<SharedFactsStore>,
    results: Mutex<ResultCache>,
    /// Durable three-tier store; `None` = memory-only service.
    store: Option<PersistentStore>,
    /// Result-record payloads retained for compaction rewrites (the
    /// result cache itself holds artifacts, not sources, so compaction
    /// could not otherwise rebuild the log). FIFO-bounded.
    persisted_results: Mutex<Vec<(u64, Json)>>,
    /// Suites struck out by repeated failed builds.
    suite_quarantine: Mutex<SuiteQuarantine>,
    /// Compiles admitted (or capacity held) but not yet finished.
    pending: AtomicUsize,
    peak_pending: AtomicUsize,
    /// Overload hysteresis latch: set at `high_watermark`, cleared only
    /// once pending drains to `low_watermark`.
    overload_latch: AtomicBool,
    created: Instant,
    // Lifetime counters (the daemon's STATS answer).
    suites: AtomicUsize,
    cold: AtomicUsize,
    hits: AtomicUsize,
    deduped: AtomicUsize,
    failed: AtomicUsize,
    rejected: AtomicUsize,
    expired: AtomicUsize,
    quarantined: AtomicUsize,
    degraded: AtomicUsize,
    /// Cumulative busy wall, in microseconds.
    busy_us: AtomicU64,
}

impl CompileService {
    pub fn new(config: ServiceConfig) -> Self {
        let facts = Arc::new(
            SharedFactsStore::bounded(config.facts_entries, config.facts_bytes)
                .with_quarantine(
                    config.quarantine_strikes,
                    Duration::from_millis(config.quarantine_backoff_ms),
                ),
        );
        Self::with_facts_store(config, facts)
    }

    /// A service sharing a caller-owned facts store — how several
    /// service instances (tenants, or a fresh client with an empty
    /// result cache) pool their analysis work. The config's
    /// `facts_entries`/`facts_bytes` are ignored; the store keeps the
    /// bounds it was built with.
    pub fn with_facts_store(config: ServiceConfig, facts: Arc<SharedFactsStore>) -> Self {
        let results = Mutex::new(ResultCache::new(config.result_entries));
        CompileService {
            config,
            facts,
            results,
            store: None,
            persisted_results: Mutex::new(Vec::new()),
            suite_quarantine: Mutex::new(SuiteQuarantine::default()),
            pending: AtomicUsize::new(0),
            peak_pending: AtomicUsize::new(0),
            overload_latch: AtomicBool::new(false),
            created: Instant::now(),
            suites: AtomicUsize::new(0),
            cold: AtomicUsize::new(0),
            hits: AtomicUsize::new(0),
            deduped: AtomicUsize::new(0),
            failed: AtomicUsize::new(0),
            rejected: AtomicUsize::new(0),
            expired: AtomicUsize::new(0),
            quarantined: AtomicUsize::new(0),
            degraded: AtomicUsize::new(0),
            busy_us: AtomicU64::new(0),
        }
    }

    /// Current pending-queue depth (admitted compiles plus held slots).
    pub fn pending(&self) -> usize {
        self.pending.load(Ordering::SeqCst)
    }

    /// Deepest the pending queue has ever been. Never exceeds
    /// `max_pending` plus any outstanding [`CompileService::hold_capacity`].
    pub fn peak_pending(&self) -> usize {
        self.peak_pending.load(Ordering::SeqCst)
    }

    /// Overload with hysteresis: latches at `high_watermark`, clears
    /// only once pending drains to `low_watermark` — the daemon
    /// recovers instead of thrashing at the boundary.
    pub fn overloaded(&self) -> bool {
        let depth = self.pending();
        if self.overload_latch.load(Ordering::SeqCst) {
            if depth <= self.config.low_watermark {
                self.overload_latch.store(false, Ordering::SeqCst);
                false
            } else {
                true
            }
        } else if depth >= self.config.high_watermark {
            self.overload_latch.store(true, Ordering::SeqCst);
            true
        } else {
            false
        }
    }

    /// Occupy `n` pending slots until the returned hold drops — lets
    /// tests and the chaos harness put the service under deterministic
    /// admission pressure without racing real compiles.
    pub fn hold_capacity(&self, n: usize) -> AdmissionHold<'_> {
        let depth = self.pending.fetch_add(n, Ordering::SeqCst) + n;
        self.peak_pending.fetch_max(depth, Ordering::SeqCst);
        AdmissionHold { service: self, n }
    }

    /// Suites currently under active quarantine.
    pub fn quarantined_suites(&self) -> usize {
        let now = Instant::now();
        let q = self.suite_quarantine.lock().expect("suite quarantine lock");
        q.map
            .values()
            .filter(|e| e.until.is_some_and(|t| now < t))
            .count()
    }

    /// Entries resident in the suite result cache.
    pub fn result_cache_len(&self) -> usize {
        self.results.lock().expect("result cache lock").map.len()
    }

    /// Seconds since the service was created (the daemon's `HEALTH`
    /// uptime).
    pub fn uptime_s(&self) -> f64 {
        self.created.elapsed().as_secs_f64()
    }

    /// Ledger answer for one suite key: `Some(strikes)` while the
    /// quarantine is active; a lapsed backoff downgrades to probation
    /// (strikes kept, this compile allowed).
    fn suite_quarantine_check(&self, key: u64) -> Option<u32> {
        if self.config.quarantine_strikes == 0 {
            return None;
        }
        let mut q = self.suite_quarantine.lock().expect("suite quarantine lock");
        q.tick += 1;
        let tick = q.tick;
        let e = q.map.get_mut(&key)?;
        match e.until {
            Some(t) if Instant::now() < t => {
                e.tick = tick;
                Some(e.strikes)
            }
            Some(_) => {
                e.until = None;
                None
            }
            None => None,
        }
    }

    /// Record a failed build (contained panic) against a suite;
    /// reaching the strike limit quarantines it with exponential
    /// backoff (doubling per strike past the limit, capped at 1024×).
    fn note_suite_failure(&self, key: u64) {
        let limit = self.config.quarantine_strikes;
        if limit == 0 {
            return;
        }
        let backoff = Duration::from_millis(self.config.quarantine_backoff_ms);
        let mut q = self.suite_quarantine.lock().expect("suite quarantine lock");
        q.tick += 1;
        let tick = q.tick;
        let e = q.map.entry(key).or_insert(SuiteStrikes {
            strikes: 0,
            until: None,
            tick,
        });
        e.strikes += 1;
        e.tick = tick;
        if e.strikes >= limit {
            let exp = (e.strikes - limit).min(10);
            e.until = Some(Instant::now() + backoff.saturating_mul(1u32 << exp));
        }
        // The ledger is bounded like everything else in the service.
        let cap = (self.config.result_entries * 4).max(64);
        while q.map.len() > cap {
            let oldest = q
                .map
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, _)| *k)
                .expect("nonempty over cap");
            q.map.remove(&oldest);
        }
    }

    /// A fully clean compile expunges the suite's strike record.
    fn note_suite_success(&self, key: u64) {
        if self.config.quarantine_strikes == 0 {
            return;
        }
        self.suite_quarantine
            .lock()
            .expect("suite quarantine lock")
            .map
            .remove(&key);
    }

    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The shared analysis-facts store (for inspection in tests and
    /// benchmarks).
    pub fn facts_store(&self) -> &Arc<SharedFactsStore> {
        &self.facts
    }

    /// Attaches a durable store at `dir` and recovers whatever state
    /// survives on disk. Never fails: an unwritable directory or a
    /// live second writer degrades to read-only (recovery still runs;
    /// appends are skipped) with the reason in
    /// [`CompileService::store_read_only_reason`].
    pub fn with_store(self, dir: impl AsRef<Path>) -> Self {
        self.attach_store(PersistentStore::open(dir))
    }

    /// [`CompileService::with_store`] with a deterministic I/O fault
    /// plan armed — the crash-torture harness's entry point.
    pub fn with_store_faults(self, dir: impl AsRef<Path>, faults: StoreFaults) -> Self {
        self.attach_store(PersistentStore::open_with_faults(dir, faults))
    }

    /// Attaches an already-opened store (tests tune compaction bounds
    /// on the store before attaching) and runs recovery.
    pub fn attach_store(mut self, store: PersistentStore) -> Self {
        self.store = Some(store);
        self.recover_from_store();
        self
    }

    /// Durable-store counters; all-default (with `enabled: false`) for
    /// a memory-only service.
    pub fn store_stats(&self) -> StoreStats {
        self.store.as_ref().map(PersistentStore::stats).unwrap_or_default()
    }

    /// Why the attached store is read-only, if it is.
    pub fn store_read_only_reason(&self) -> Option<String> {
        self.store
            .as_ref()
            .and_then(|s| s.read_only_reason().map(str::to_string))
    }

    /// The compile-relevant profile identity persisted with result
    /// records: everything [`CompileService::suite_key`] hashes except
    /// the source. A restarted service with a different profile or
    /// emission mode refuses the record (`refused_identity`) instead of
    /// replaying a compile that could not match.
    fn profile_id(&self) -> u64 {
        let mut norm = self.config.profile.clone();
        norm.threads = 1;
        let mut h = DefaultHasher::new();
        format!("{:?}", norm).hash(&mut h);
        self.config.emit.hash(&mut h);
        h.finish()
    }

    /// The facts-tier build budget the pipeline derives from this
    /// service's profile (see `Compiler::compile`: `loop_op_budget` ×
    /// 32), i.e. the `build_budget` live facts provenance will carry.
    fn facts_build_budget(&self) -> u64 {
        if self.config.profile.loop_op_budget == u64::MAX {
            u64::MAX
        } else {
            self.config.profile.loop_op_budget.saturating_mul(32)
        }
    }

    /// Recovery: adopt whatever the durable store salvages, trusting
    /// nothing. Loop records are parsed field-by-field and re-admitted
    /// under their stored keys (a stale key simply never matches a
    /// lookup, and every splice still re-verifies structure); facts
    /// records are replayed through the real builders under live-
    /// recomputed keys; result records are recompiled through the
    /// service — warm thanks to the just-recovered loop records — and
    /// adopted only when the live signature reproduces the stored echo.
    /// Totally sandboxed: a record can be refused, never panic.
    fn recover_from_store(&self) {
        let Some(store) = &self.store else { return };
        let loaded = store.load();

        // Tier order matters: loops first (they make the result-tier
        // replays cheap), then facts, then results.
        for rec in &loaded.loops {
            let adopted = rec.u64_field("k").and_then(|key| {
                let s = SplicedLoop::from_json(rec.get("rec")?)?;
                Some((key, s))
            });
            match adopted {
                Some((key, s)) => {
                    self.facts.loop_put(key, Arc::new(s));
                    store.mark_seen(Tier::Loops, key);
                    store.note_recovered(Tier::Loops);
                }
                None => store.note_verify_refusal(),
            }
        }

        let live_caps = self.config.profile.caps;
        let live_budget = self.facts_build_budget();
        for rec in &loaded.facts {
            let prov = (|| {
                Some(FactsProvenance {
                    caps: caps_from_bits(rec.u64_field("caps")?),
                    build_budget: rec.u64_field("budget")?,
                    base_names: rec
                        .get("base")?
                        .as_arr()?
                        .iter()
                        .map(|v| v.as_str().map(str::to_string))
                        .collect::<Option<Vec<_>>>()?,
                    text: rec.str_field("text")?.to_string(),
                })
            })();
            let Some(prov) = prov else {
                store.note_verify_refusal();
                continue;
            };
            if prov.caps != live_caps || prov.build_budget != live_budget {
                store.note_identity_refusal();
                continue;
            }
            if rebuild_facts(&self.facts, &prov) {
                store.note_recovered(Tier::Facts);
            } else {
                store.note_verify_refusal();
            }
        }
        // The replays published under keys recomputed from live
        // content; seed the persisted set from those, not the records.
        for (k, _) in self.facts.facts_snapshot() {
            store.mark_seen(Tier::Facts, k);
        }

        let live_profile = self.profile_id();
        for rec in &loaded.results {
            let parsed = (|| {
                Some((
                    rec.str_field("name")?.to_string(),
                    rec.str_field("src")?.to_string(),
                    rec.str_field("sig")?.to_string(),
                    rec.u64_field("profile")?,
                ))
            })();
            let Some((name, src, sig, pid)) = parsed else {
                store.note_verify_refusal();
                continue;
            };
            if pid != live_profile || sig.is_empty() {
                store.note_identity_refusal();
                continue;
            }
            // Mark before compiling so the post-batch persist pass of
            // the replay compile doesn't re-append the same record.
            let key = self.suite_key(&src);
            store.mark_seen(Tier::Results, key);
            let outcome = self.compile_one(SuiteRequest::new(name.clone(), src.clone()));
            if outcome.artifact.signature() == sig {
                store.note_recovered(Tier::Results);
                self.retain_result_record(key, result_payload(key, pid, &name, &src, &sig));
            } else {
                // The stored echo does not reproduce: the record is
                // corrupt (or from different code). The live compile
                // stands on its own — only the record is refused.
                store.note_verify_refusal();
            }
        }
    }

    /// Remembers a result record for compaction rewrites, FIFO-bounded
    /// to twice the result-cache capacity.
    fn retain_result_record(&self, key: u64, payload: Json) {
        let mut kept = self.persisted_results.lock().unwrap_or_else(|p| p.into_inner());
        kept.retain(|(k, _)| *k != key);
        kept.push((key, payload));
        let cap = self.config.result_entries.saturating_mul(2).max(1);
        while kept.len() > cap {
            kept.remove(0);
        }
    }

    /// Post-batch persistence: append every not-yet-persisted loop
    /// record, facts provenance, and cacheable cold result to the tier
    /// logs, then compact any log past its byte bound. Read-only stores
    /// skip all of it.
    fn persist_after_batch(&self, batch: &[SuiteRequest], keys: &[u64], outcomes: &[SuiteOutcome]) {
        let Some(store) = &self.store else { return };
        if store.read_only_reason().is_some() {
            return;
        }

        let loop_records: Vec<(u64, Json)> = self
            .facts
            .loop_snapshot()
            .into_iter()
            .filter_map(|(k, rec)| {
                let s = rec.downcast::<SplicedLoop>().ok()?;
                Some((k, Json::Obj(vec![
                    ("k", Json::Str(k.to_string())),
                    ("rec", s.to_json()),
                ])))
            })
            .collect();
        let new_loops: Vec<Json> = loop_records
            .iter()
            .filter(|(k, _)| store.mark_seen(Tier::Loops, *k))
            .map(|(_, p)| p.clone())
            .collect();
        store.append(Tier::Loops, &new_loops);

        let facts_records: Vec<(u64, Json)> = self
            .facts
            .facts_snapshot()
            .into_iter()
            .map(|(k, prov)| (k, facts_payload(k, &prov)))
            .collect();
        let new_facts: Vec<Json> = facts_records
            .iter()
            .filter(|(k, _)| store.mark_seen(Tier::Facts, *k))
            .map(|(_, p)| p.clone())
            .collect();
        store.append(Tier::Facts, &new_facts);

        let pid = self.profile_id();
        let mut new_results = Vec::new();
        for (i, o) in outcomes.iter().enumerate() {
            if o.served != Served::Cold || !Self::cacheable(&o.artifact) {
                continue;
            }
            let sig = o.artifact.signature();
            if sig.is_empty() || !store.mark_seen(Tier::Results, keys[i]) {
                continue;
            }
            let payload = result_payload(keys[i], pid, &o.name, &batch[i].source, &sig);
            self.retain_result_record(keys[i], payload.clone());
            new_results.push(payload);
        }
        store.append(Tier::Results, &new_results);

        if store.wants_compaction(Tier::Loops) {
            store.compact(Tier::Loops, &loop_records);
        }
        if store.wants_compaction(Tier::Facts) {
            store.compact(Tier::Facts, &facts_records);
        }
        if store.wants_compaction(Tier::Results) {
            let kept = self
                .persisted_results
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .clone();
            store.compact(Tier::Results, &kept);
        }
    }

    /// Cache key for one suite: raw source bytes, the emission mode,
    /// plus the compile-relevant profile identity. Emission is keyed so
    /// a `compile_and_emit` artifact can never be served to a plain
    /// `compile` request (or vice versa) — the two carry different
    /// skip ledgers (`NotEmittable`) and artifacts. `threads` is
    /// excluded — reports are thread-invariant, so worker width must
    /// not fragment the cache. Raw source (not the resolved-program
    /// fingerprint) is
    /// deliberate: two garbled sources can *resolve* identically yet
    /// carry different recovery diagnostics, which are part of the
    /// answer.
    fn suite_key(&self, source: &str) -> u64 {
        let mut norm = self.config.profile.clone();
        norm.threads = 1;
        let mut h = DefaultHasher::new();
        format!("{:?}", norm).hash(&mut h);
        self.config.emit.hash(&mut h);
        source.hash(&mut h);
        h.finish()
    }

    /// Compile one suite outside a batch (a one-element
    /// [`CompileService::compile_many`]).
    pub fn compile_one(&self, req: SuiteRequest) -> SuiteOutcome {
        self.compile_many(&[req])
            .outcomes
            .pop()
            .expect("one outcome per request")
    }

    /// True when the artifact may enter the result cache: a compile
    /// that ran the full pipeline with no expiry, no degradation, no
    /// contained panic, and no quarantine refusal. Anything else would
    /// replay a partial (or poisoned) answer forever.
    fn cacheable(art: &SuiteArtifact) -> bool {
        match art.compile() {
            Some(r) => {
                !r.report.deadline_expired
                    && r.report.degrade.is_none()
                    && r.report.panicked_loops() == 0
                    && r.report.quarantined_loops() == 0
            }
            None => false,
        }
    }

    /// How an artifact classifies when it is *not* a plain
    /// full-fidelity result (`None` → Cold / CacheHit / Deduped).
    /// Precedence: refusals (Rejected / Quarantined artifacts) over
    /// compile outcomes; within a compile, expiry over quarantined
    /// loops over tier degradation.
    fn classify_artifact(art: &SuiteArtifact) -> Option<Served> {
        match art {
            // A contained panic stays in the base class; `failed`
            // counts it separately.
            SuiteArtifact::Failed(_) => None,
            SuiteArtifact::Rejected { .. } => Some(Served::Rejected),
            SuiteArtifact::Quarantined { .. } => Some(Served::Quarantined),
            SuiteArtifact::Compiled(_) | SuiteArtifact::Emitted(_) => {
                let r = art.compile().expect("compiled artifact");
                if r.report.deadline_expired {
                    Some(Served::DeadlineExpired)
                } else if r.report.quarantined_loops() > 0 {
                    Some(Served::Quarantined)
                } else if r.report.degrade.is_some() {
                    Some(Served::Degraded)
                } else {
                    None
                }
            }
        }
    }

    /// Compile a batch: refuse quarantined suites from the ledger,
    /// dedupe identical suites, answer repeats from the result cache,
    /// shed what the bounded pending queue cannot admit, fan the rest
    /// out across the worker pool (at the degradation tier the queue
    /// depth demands, under each request's deadline), and return one
    /// outcome per request in request order plus the batch-scoped
    /// stats.
    pub fn compile_many(&self, batch: &[SuiteRequest]) -> Batch {
        let t0 = Instant::now();
        let facts_before = self.facts.stats();
        let store_before = self.store_stats();

        let keys: Vec<u64> = batch.iter().map(|r| self.suite_key(&r.source)).collect();

        // Quarantine gate first: a suite under active quarantine is
        // answered from the strike ledger without planning any compile.
        let mut quarantined_art: HashMap<u64, Arc<SuiteArtifact>> = HashMap::new();
        {
            let mut seen: HashSet<u64> = HashSet::new();
            for &k in &keys {
                if seen.insert(k) {
                    if let Some(strikes) = self.suite_quarantine_check(k) {
                        quarantined_art
                            .insert(k, Arc::new(SuiteArtifact::Quarantined { strikes }));
                    }
                }
            }
        }

        // Plan: the first admissible request with a given key owns the
        // compile (or the cache lookup); later identical requests are
        // deduped onto the owner.
        let mut owner_of: HashMap<u64, usize> = HashMap::new();
        // Per request: Some(owner index) when deduped, None when owner
        // (or quarantined — resolved by key during assembly).
        let dup_of: Vec<Option<usize>> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| {
                if quarantined_art.contains_key(k) {
                    return None;
                }
                match owner_of.get(k) {
                    Some(&o) => Some(o),
                    None => {
                        owner_of.insert(*k, i);
                        None
                    }
                }
            })
            .collect();

        // Owners: try the result cache under one lock, else queue a job.
        let mut cached: HashMap<usize, (Arc<SuiteArtifact>, f64)> = HashMap::new();
        let mut jobs: Vec<usize> = Vec::new();
        {
            let mut cache = self.results.lock().expect("result cache lock");
            for (i, dup) in dup_of.iter().enumerate() {
                if dup.is_some() || quarantined_art.contains_key(&keys[i]) {
                    continue;
                }
                let tl = Instant::now();
                match cache.get(keys[i]) {
                    Some(hit) => {
                        cached.insert(i, (hit, tl.elapsed().as_secs_f64()));
                    }
                    None => jobs.push(i),
                }
            }
        }

        // Admission control: the pending queue is bounded. A batch that
        // would overflow it sheds compiles down to fit, per the
        // configured policy — an explicit structured rejection instead
        // of unbounded queueing.
        let mut shed: HashMap<usize, Arc<SuiteArtifact>> = HashMap::new();
        let depth_before = self.pending.load(Ordering::SeqCst);
        let avail = self.config.max_pending.saturating_sub(depth_before);
        if jobs.len() > avail {
            let excess = jobs.len() - avail;
            let victims: Vec<usize> = match self.config.shed {
                ShedPolicy::OldestFirst => jobs[..excess].to_vec(),
                ShedPolicy::LargestFirst => {
                    let mut by_size = jobs.clone();
                    by_size.sort_by(|&a, &b| {
                        batch[b]
                            .source
                            .len()
                            .cmp(&batch[a].source.len())
                            .then(a.cmp(&b))
                    });
                    by_size[..excess].to_vec()
                }
            };
            let reason = format!(
                "overload: {} pending, capacity {}",
                depth_before, self.config.max_pending
            );
            for i in victims {
                shed.insert(
                    i,
                    Arc::new(SuiteArtifact::Rejected {
                        reason: reason.clone(),
                    }),
                );
            }
            jobs.retain(|i| !shed.contains_key(i));
        }

        // Admit the survivors; the resulting depth picks the
        // degradation tier for this wave (full → facts-only →
        // parse-only) — shed load gets less pipeline, not more queue.
        let depth = self.pending.fetch_add(jobs.len(), Ordering::SeqCst) + jobs.len();
        self.peak_pending.fetch_max(depth, Ordering::SeqCst);
        let tier = if depth > self.config.high_watermark {
            DegradeTier::ParseOnly
        } else if depth > self.config.low_watermark {
            DegradeTier::FactsOnly
        } else {
            DegradeTier::Full
        };

        // Deadlines are armed at admission, not at job start: time
        // spent waiting for a worker burns the request's budget, as it
        // would in a real service.
        let tokens: Vec<Option<CancelToken>> = jobs
            .iter()
            .map(|&i| batch[i].deadline.map(CancelToken::deadline_in))
            .collect();

        // Fan the jobs out across the bounded pool. Slots are indexed
        // by job position, so assembly below is deterministic in
        // request order regardless of completion order. Each finished
        // job releases its pending slot immediately.
        let slots: Vec<OnceLock<(Arc<SuiteArtifact>, f64)>> =
            jobs.iter().map(|_| OnceLock::new()).collect();
        let width = self.config.workers.max(1).min(jobs.len().max(1));
        if width <= 1 {
            for (j, &i) in jobs.iter().enumerate() {
                let _ = slots[j].set(self.run_job(&batch[i], tokens[j].clone(), tier));
                self.pending.fetch_sub(1, Ordering::SeqCst);
            }
        } else {
            let next = AtomicUsize::new(0);
            std::thread::scope(|s| {
                for _ in 0..width {
                    s.spawn(|| loop {
                        let j = next.fetch_add(1, Ordering::Relaxed);
                        if j >= jobs.len() {
                            break;
                        }
                        let _ =
                            slots[j].set(self.run_job(&batch[jobs[j]], tokens[j].clone(), tier));
                        self.pending.fetch_sub(1, Ordering::SeqCst);
                    });
                }
            });
        }

        // Retain only full-fidelity results — a partial or poisoned
        // entry would replay its degradation forever — and keep the
        // quarantine ledger current: contained panics strike the suite,
        // clean compiles expunge it.
        let mut fresh: HashMap<usize, (Arc<SuiteArtifact>, f64)> = HashMap::new();
        {
            let mut cache = self.results.lock().expect("result cache lock");
            for (j, &i) in jobs.iter().enumerate() {
                let (art, wall) = slots[j].get().expect("job completed").clone();
                if Self::cacheable(&art) {
                    cache.insert(keys[i], Arc::clone(&art));
                }
                fresh.insert(i, (art, wall));
            }
        }
        for &i in &jobs {
            let (art, _) = &fresh[&i];
            let panicked = match art.compile() {
                None => true, // Failed: the whole compile panicked
                Some(r) => r.report.panicked_loops() > 0,
            };
            if panicked {
                self.note_suite_failure(keys[i]);
            } else if Self::cacheable(art) {
                self.note_suite_success(keys[i]);
            }
        }

        // Assemble outcomes in request order.
        let mut outcomes: Vec<SuiteOutcome> = Vec::with_capacity(batch.len());
        let mut stats_cold = 0usize;
        let mut stats_hits = 0usize;
        let mut stats_dedup = 0usize;
        let mut stats_failed = 0usize;
        let mut stats_rejected = 0usize;
        let mut stats_expired = 0usize;
        let mut stats_quarantined = 0usize;
        let mut stats_degraded = 0usize;
        for (i, req) in batch.iter().enumerate() {
            let (served, artifact, wall_s) = if let Some(art) = quarantined_art.get(&keys[i]) {
                (Served::Quarantined, Arc::clone(art), 0.0)
            } else if let Some(art) = shed.get(&i) {
                (Served::Rejected, Arc::clone(art), 0.0)
            } else {
                match dup_of[i] {
                    Some(owner) => {
                        if let Some(art) = shed.get(&owner) {
                            // The owner was shed, so nothing was
                            // compiled for this key: the duplicate is
                            // rejected too.
                            (Served::Rejected, Arc::clone(art), 0.0)
                        } else {
                            let art = cached
                                .get(&owner)
                                .or_else(|| fresh.get(&owner))
                                .map(|(a, _)| Arc::clone(a))
                                .expect("owner resolved");
                            let served =
                                Self::classify_artifact(&art).unwrap_or(Served::Deduped);
                            (served, art, 0.0)
                        }
                    }
                    None => match cached.get(&i) {
                        // Only full-fidelity artifacts enter the cache,
                        // so a hit is always a plain CacheHit.
                        Some((art, wall)) => (Served::CacheHit, Arc::clone(art), *wall),
                        None => {
                            let (art, wall) = fresh.get(&i).expect("fresh result").clone();
                            let served = Self::classify_artifact(&art).unwrap_or(Served::Cold);
                            (served, art, wall)
                        }
                    },
                }
            };
            match served {
                Served::Cold => stats_cold += 1,
                Served::CacheHit => stats_hits += 1,
                Served::Deduped => stats_dedup += 1,
                Served::Rejected => stats_rejected += 1,
                Served::DeadlineExpired => stats_expired += 1,
                Served::Quarantined => stats_quarantined += 1,
                Served::Degraded => stats_degraded += 1,
            }
            if matches!(*artifact, SuiteArtifact::Failed(_)) {
                stats_failed += 1;
            }
            outcomes.push(SuiteOutcome {
                name: req.name.clone(),
                served,
                wall_s,
                artifact,
            });
        }

        // Checkpoint the new state before answering: a crash after this
        // point loses nothing the batch learned.
        self.persist_after_batch(batch, &keys, &outcomes);

        let wall_s = t0.elapsed().as_secs_f64();
        let result_evictions = self.results.lock().expect("result cache lock").evictions;
        let stats = ServiceStats {
            suites: batch.len(),
            cold: stats_cold,
            result_hits: stats_hits,
            deduped: stats_dedup,
            failed: stats_failed,
            rejected: stats_rejected,
            deadline_expired: stats_expired,
            quarantined: stats_quarantined,
            degraded: stats_degraded,
            pending_peak: self.peak_pending(),
            quarantined_suites: self.quarantined_suites(),
            result_evictions,
            facts: self.facts.stats().since(&facts_before),
            store: self.store_stats().since(&store_before),
            wall_s,
            suites_per_s: if wall_s > 0.0 {
                batch.len() as f64 / wall_s
            } else {
                0.0
            },
            per_suite_wall_s: outcomes
                .iter()
                .map(|o| (o.name.clone(), o.wall_s))
                .collect(),
        };

        // Fold into the lifetime counters.
        self.suites.fetch_add(batch.len(), Ordering::Relaxed);
        self.cold.fetch_add(stats_cold, Ordering::Relaxed);
        self.hits.fetch_add(stats_hits, Ordering::Relaxed);
        self.deduped.fetch_add(stats_dedup, Ordering::Relaxed);
        self.failed.fetch_add(stats_failed, Ordering::Relaxed);
        self.rejected.fetch_add(stats_rejected, Ordering::Relaxed);
        self.expired.fetch_add(stats_expired, Ordering::Relaxed);
        self.quarantined
            .fetch_add(stats_quarantined, Ordering::Relaxed);
        self.degraded.fetch_add(stats_degraded, Ordering::Relaxed);
        self.busy_us
            .fetch_add((wall_s * 1e6) as u64, Ordering::Relaxed);

        Batch { outcomes, stats }
    }

    /// Lifetime counters since the service was created (the daemon's
    /// `STATS` answer). Gauges and facts counters are absolute.
    pub fn cumulative_stats(&self) -> ServiceStats {
        let wall_s = self.busy_us.load(Ordering::Relaxed) as f64 / 1e6;
        let suites = self.suites.load(Ordering::Relaxed);
        ServiceStats {
            suites,
            cold: self.cold.load(Ordering::Relaxed),
            result_hits: self.hits.load(Ordering::Relaxed),
            deduped: self.deduped.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            deadline_expired: self.expired.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            pending_peak: self.peak_pending(),
            quarantined_suites: self.quarantined_suites(),
            result_evictions: self.results.lock().expect("result cache lock").evictions,
            facts: self.facts.stats(),
            store: self.store_stats(),
            wall_s,
            suites_per_s: if wall_s > 0.0 {
                suites as f64 / wall_s
            } else {
                0.0
            },
            per_suite_wall_s: Vec::new(),
        }
    }

    /// One compile, sandboxed: the recovering front end makes the
    /// compile total over arbitrary bytes, and `catch_unwind` contains
    /// anything that still escapes so the pool (and the daemon) live on.
    fn run_job(
        &self,
        req: &SuiteRequest,
        token: Option<CancelToken>,
        tier: DegradeTier,
    ) -> (Arc<SuiteArtifact>, f64) {
        let t = Instant::now();
        let mut compiler = Compiler::new(self.config.profile.clone())
            .with_shared_facts(Arc::clone(&self.facts))
            .with_degrade(tier);
        if let Some(tok) = token {
            compiler = compiler.with_cancel(tok);
        }
        let emit = self.config.emit;
        let art = catch_unwind(AssertUnwindSafe(|| {
            let r = compiler.compile_source_recovering(&req.name, &req.source);
            if emit {
                SuiteArtifact::Emitted(Box::new(compiler.emit(r)))
            } else {
                SuiteArtifact::Compiled(Box::new(r))
            }
        }))
        .unwrap_or_else(|p| {
            let msg = p
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| p.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic".to_string());
            SuiteArtifact::Failed(msg)
        });
        (Arc::new(art), t.elapsed().as_secs_f64())
    }
}

/// Facts-tier record payload: build provenance, not build output —
/// recovery replays it through the real builders. `u64`s are encoded
/// as decimal strings (f64 JSON numbers cannot carry 64 bits).
fn facts_payload(key: u64, prov: &FactsProvenance) -> Json {
    Json::Obj(vec![
        ("k", Json::Str(key.to_string())),
        ("caps", Json::Str(caps_bits(&prov.caps).to_string())),
        ("budget", Json::Str(prov.build_budget.to_string())),
        (
            "base",
            Json::Arr(prov.base_names.iter().map(|n| Json::Str(n.clone())).collect()),
        ),
        ("text", Json::Str(prov.text.clone())),
    ])
}

/// Result-tier record payload: the suite's name and raw source plus
/// the report-signature echo a recovering service must reproduce from
/// a live compile before the record is believed.
fn result_payload(key: u64, profile_id: u64, name: &str, source: &str, sig: &str) -> Json {
    Json::Obj(vec![
        ("k", Json::Str(key.to_string())),
        ("profile", Json::Str(profile_id.to_string())),
        ("name", Json::Str(name.to_string())),
        ("src", Json::Str(source.to_string())),
        ("sig", Json::Str(sig.to_string())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "\
PROGRAM MAIN
REAL A(100)
INTEGER I
DO I = 1, 100
A(I) = A(I) + 1.0
ENDDO
END
";

    const SRC2: &str = "\
PROGRAM MAIN
REAL B(50)
INTEGER J
DO J = 1, 50
B(J) = 2.0 * B(J)
ENDDO
END
";

    fn svc() -> CompileService {
        CompileService::new(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        })
    }

    #[test]
    fn second_batch_is_served_from_the_result_cache() {
        let s = svc();
        let batch = [SuiteRequest::new("a", SRC)];
        let first = s.compile_many(&batch);
        assert_eq!(first.stats.cold, 1);
        assert_eq!(first.stats.result_hits, 0);
        let second = s.compile_many(&batch);
        assert_eq!(second.stats.cold, 0);
        assert_eq!(second.stats.result_hits, 1);
        assert_eq!(
            first.outcomes[0].artifact.signature(),
            second.outcomes[0].artifact.signature()
        );
    }

    #[test]
    fn in_batch_duplicates_are_deduped_not_misses() {
        let s = svc();
        let batch = [
            SuiteRequest::new("a", SRC),
            SuiteRequest::new("b", SRC2),
            SuiteRequest::new("a-again", SRC),
        ];
        let out = s.compile_many(&batch);
        assert_eq!(out.stats.cold, 2, "two distinct sources compile");
        assert_eq!(out.stats.deduped, 1, "the repeat rides along");
        assert_eq!(out.stats.result_hits, 0);
        assert_eq!(out.outcomes[0].served, Served::Cold);
        assert_eq!(out.outcomes[2].served, Served::Deduped);
        assert!(Arc::ptr_eq(
            &out.outcomes[0].artifact,
            &out.outcomes[2].artifact
        ));
    }

    #[test]
    fn duplicate_of_a_cached_suite_is_hit_plus_dedup() {
        let s = svc();
        s.compile_many(&[SuiteRequest::new("warm", SRC)]);
        let out = s.compile_many(&[
            SuiteRequest::new("x", SRC),
            SuiteRequest::new("y", SRC),
        ]);
        assert_eq!(out.outcomes[0].served, Served::CacheHit);
        assert_eq!(out.outcomes[1].served, Served::Deduped);
        assert_eq!(out.stats.cold, 0);
    }

    #[test]
    fn emission_mode_fragments_the_result_cache() {
        // A `compile_and_emit` artifact must never be served to a
        // plain `compile` request (or vice versa): the emission flag
        // is part of the suite key, so two services differing only in
        // `emit` can never agree on a key...
        let plain = svc();
        let emitting = CompileService::new(ServiceConfig {
            workers: 2,
            emit: true,
            ..ServiceConfig::default()
        });
        assert_ne!(
            plain.suite_key(SRC),
            emitting.suite_key(SRC),
            "emission mode must be part of the suite key"
        );
        // ...and within one service the artifact kind always matches
        // the config, warm or cold.
        let cold = emitting.compile_many(&[SuiteRequest::new("a", SRC)]);
        let warm = emitting.compile_many(&[SuiteRequest::new("a", SRC)]);
        assert_eq!(warm.stats.result_hits, 1);
        for out in [&cold, &warm] {
            assert!(
                matches!(*out.outcomes[0].artifact, SuiteArtifact::Emitted(_)),
                "emitting service must serve emitted artifacts"
            );
        }
    }

    #[test]
    fn result_cache_is_lru_bounded_and_counts_evictions() {
        let s = CompileService::new(ServiceConfig {
            workers: 1,
            result_entries: 1,
            ..ServiceConfig::default()
        });
        s.compile_many(&[SuiteRequest::new("a", SRC)]);
        s.compile_many(&[SuiteRequest::new("b", SRC2)]); // evicts a
        let again = s.compile_many(&[SuiteRequest::new("a", SRC)]);
        assert_eq!(again.stats.cold, 1, "a was evicted, recompiles");
        assert!(s.cumulative_stats().result_evictions >= 1);
    }

    #[test]
    fn profile_identity_keys_the_result_cache_but_threads_do_not() {
        let s = svc();
        s.compile_many(&[SuiteRequest::new("a", SRC)]);
        // Same source under a different worker width would still hit —
        // the key ignores threads by construction.
        let k1 = s.suite_key(SRC);
        let full = CompileService::new(ServiceConfig {
            profile: CompilerProfile::full(),
            ..ServiceConfig::default()
        });
        assert_ne!(k1, full.suite_key(SRC), "different profiles, different keys");
        let mut threaded_cfg = ServiceConfig::default();
        threaded_cfg.profile = threaded_cfg.profile.with_threads(8);
        let threaded = CompileService::new(threaded_cfg);
        assert_eq!(k1, threaded.suite_key(SRC), "threads excluded from key");
    }

    #[test]
    fn cumulative_stats_accumulate_across_batches() {
        let s = svc();
        s.compile_many(&[SuiteRequest::new("a", SRC)]);
        s.compile_many(&[SuiteRequest::new("a", SRC)]);
        let c = s.cumulative_stats();
        assert_eq!(c.suites, 2);
        assert_eq!(c.cold, 1);
        assert_eq!(c.result_hits, 1);
    }

    #[test]
    fn zero_deadline_expires_structurally_and_is_never_cached() {
        let s = svc();
        let out = s.compile_many(&[
            SuiteRequest::new("a", SRC).with_deadline(Duration::ZERO),
            SuiteRequest::new("a-dup", SRC).with_deadline(Duration::ZERO),
        ]);
        assert_eq!(out.outcomes[0].served, Served::DeadlineExpired);
        // The duplicate inherits the owner's class — it shares the
        // same partial artifact, not a full-fidelity one.
        assert_eq!(out.outcomes[1].served, Served::DeadlineExpired);
        assert_eq!(out.stats.deadline_expired, 2);
        let r = out.outcomes[0].artifact.compile().expect("partial report");
        assert!(r.report.deadline_expired);
        assert_eq!(
            r.loops.len() + r.report.skipped.len(),
            r.report.loops,
            "accounting survives expiry"
        );
        // Partial answers never enter the result cache: the next
        // undeadlined request compiles cold and is full fidelity.
        let again = s.compile_one(SuiteRequest::new("a", SRC));
        assert_eq!(again.served, Served::Cold);
        assert!(!again
            .artifact
            .compile()
            .expect("full report")
            .report
            .deadline_expired);
    }

    #[test]
    fn overflow_sheds_oldest_first_by_default() {
        let s = CompileService::new(ServiceConfig {
            workers: 1,
            max_pending: 2,
            high_watermark: 2,
            low_watermark: 1,
            ..ServiceConfig::default()
        });
        let batch = [
            SuiteRequest::new("old1", SRC),
            SuiteRequest::new("old2", "PROGRAM B\nINTEGER I\nDO I = 1, 9\nENDDO\nEND\n"),
            SuiteRequest::new("new1", "PROGRAM C\nINTEGER I\nDO I = 1, 9\nENDDO\nEND\n"),
            SuiteRequest::new("new2", SRC2),
        ];
        let out = s.compile_many(&batch);
        assert_eq!(out.outcomes[0].served, Served::Rejected);
        assert_eq!(out.outcomes[1].served, Served::Rejected);
        assert!(out.outcomes[2].served != Served::Rejected);
        assert!(out.outcomes[3].served != Served::Rejected);
        assert_eq!(out.stats.rejected, 2);
        assert!(matches!(
            &*out.outcomes[0].artifact,
            SuiteArtifact::Rejected { reason } if reason.contains("capacity 2")
        ));
        assert!(out.stats.pending_peak <= 2, "bound holds");
    }

    #[test]
    fn largest_first_sheds_the_biggest_sources() {
        let s = CompileService::new(ServiceConfig {
            workers: 1,
            max_pending: 1,
            high_watermark: 1,
            low_watermark: 0,
            shed: ShedPolicy::LargestFirst,
            ..ServiceConfig::default()
        });
        let big = format!("{}{}", SRC, "C PADDING PADDING PADDING\n".repeat(20));
        let out = s.compile_many(&[
            SuiteRequest::new("big", big),
            SuiteRequest::new("small", SRC2),
        ]);
        assert_eq!(out.outcomes[0].served, Served::Rejected, "big shed first");
        assert!(out.outcomes[1].served != Served::Rejected);
    }

    #[test]
    fn held_capacity_degrades_tiers_by_depth() {
        let s = CompileService::new(ServiceConfig {
            workers: 1,
            max_pending: 16,
            high_watermark: 6,
            low_watermark: 3,
            ..ServiceConfig::default()
        });
        // Depth 8 > high: parse-only.
        {
            let _hold = s.hold_capacity(7);
            let out = s.compile_one(SuiteRequest::new("a", SRC));
            assert_eq!(out.served, Served::Degraded);
            let r = out.artifact.compile().expect("degraded report");
            assert_eq!(r.report.degrade, Some(apar_core::DegradeTier::ParseOnly));
            assert_eq!(r.loops.len(), 0, "no analysis at parse-only");
            assert_eq!(r.report.skipped.len(), r.report.loops);
        }
        // Depth 5 in (low, high]: facts-only.
        {
            let _hold = s.hold_capacity(4);
            let out = s.compile_one(SuiteRequest::new("b", SRC2));
            assert_eq!(out.served, Served::Degraded);
            let r = out.artifact.compile().expect("degraded report");
            assert_eq!(r.report.degrade, Some(apar_core::DegradeTier::FactsOnly));
        }
        // Degraded answers were not cached: both recompile cold at
        // full fidelity once the pressure is gone.
        let out = s.compile_many(&[SuiteRequest::new("a", SRC), SuiteRequest::new("b", SRC2)]);
        assert_eq!(out.stats.cold, 2);
        assert_eq!(out.stats.result_hits, 0);
    }

    #[test]
    fn overload_latch_clears_only_at_the_low_watermark() {
        let s = CompileService::new(ServiceConfig {
            high_watermark: 4,
            low_watermark: 2,
            ..ServiceConfig::default()
        });
        assert!(!s.overloaded());
        let h1 = s.hold_capacity(3);
        let h2 = s.hold_capacity(2);
        assert!(s.overloaded(), "depth 5 >= high 4 latches");
        drop(h2);
        assert_eq!(s.pending(), 3);
        assert!(s.overloaded(), "depth 3 > low 2: still latched");
        drop(h1);
        assert!(!s.overloaded(), "drained to 0 <= low 2: clears");
        assert!(!s.overloaded(), "and stays clear");
        assert_eq!(s.peak_pending(), 5);
    }

    #[test]
    fn crash_looping_suite_is_quarantined_then_recovers_after_backoff() {
        use apar_core::PassId;
        let s = CompileService::new(ServiceConfig {
            workers: 1,
            profile: CompilerProfile::polaris2008().with_fault(
                PassId::DataDependence,
                "MAIN",
                None,
            ),
            quarantine_strikes: 2,
            quarantine_backoff_ms: 40,
            ..ServiceConfig::default()
        });
        // Two contained-panic compiles strike the suite out…
        for _ in 0..2 {
            let out = s.compile_one(SuiteRequest::new("bad", SRC));
            let r = out.artifact.compile().expect("contained panic");
            assert!(r.report.panicked_loops() > 0, "fault fires and is contained");
        }
        // …so the third request is refused from the ledger, costlessly.
        let refused = s.compile_one(SuiteRequest::new("bad", SRC));
        assert_eq!(refused.served, Served::Quarantined);
        assert!(matches!(
            &*refused.artifact,
            SuiteArtifact::Quarantined { strikes: 2 }
        ));
        assert_eq!(s.quarantined_suites(), 1);
        // After the backoff lapses the suite gets a probation compile
        // (which fails again here, re-arming the quarantine).
        std::thread::sleep(Duration::from_millis(60));
        let probation = s.compile_one(SuiteRequest::new("bad", SRC));
        assert!(
            probation.artifact.compile().is_some(),
            "probation compile actually ran"
        );
        assert_eq!(s.quarantined_suites(), 1, "failure re-armed the quarantine");
        // A healthy suite is unaffected throughout (different unit name
        // dodges the injected fault).
        let healthy =
            s.compile_one(SuiteRequest::new("good", SRC.replace("MAIN", "OTHER")));
        assert_eq!(healthy.served, Served::Cold);
    }

    #[test]
    fn clean_compile_expunges_suite_strikes() {
        let s = CompileService::new(ServiceConfig {
            workers: 1,
            quarantine_strikes: 2,
            quarantine_backoff_ms: 10_000,
            ..ServiceConfig::default()
        });
        // One strike by hand, then a clean compile of the same suite.
        let key = s.suite_key(SRC);
        s.note_suite_failure(key);
        let out = s.compile_one(SuiteRequest::new("a", SRC));
        assert_eq!(out.served, Served::Cold);
        assert!(
            s.suite_quarantine.lock().unwrap().map.is_empty(),
            "success expunged the strike record"
        );
    }

    #[test]
    fn zero_strikes_disables_the_suite_quarantine() {
        use apar_core::PassId;
        let s = CompileService::new(ServiceConfig {
            workers: 1,
            profile: CompilerProfile::polaris2008().with_fault(
                PassId::DataDependence,
                "MAIN",
                None,
            ),
            quarantine_strikes: 0,
            ..ServiceConfig::default()
        });
        for _ in 0..4 {
            let out = s.compile_one(SuiteRequest::new("bad", SRC));
            assert_ne!(out.served, Served::Quarantined);
            assert!(out.artifact.compile().is_some(), "every compile runs");
        }
        assert_eq!(s.quarantined_suites(), 0);
    }

    #[test]
    fn stats_json_carries_the_resilience_counters() {
        let s = svc();
        let out = s.compile_many(&[SuiteRequest::new("a", SRC).with_deadline(Duration::ZERO)]);
        let json = out.stats.to_json().render_compact();
        for field in [
            "\"rejected\":0",
            "\"deadline_expired\":1",
            "\"quarantined\":0",
            "\"degraded\":0",
            "\"pending_peak\":1",
            "\"quarantined_suites\":0",
            "\"facts_quarantine_hits\":0",
        ] {
            assert!(json.contains(field), "{field} missing from {json}");
        }
    }
}

//! Compile-as-a-service: batch and daemon compilation over the autopar
//! pipeline.
//!
//! ComPar-style source-to-source auto-parallelizers are run as batch
//! services over many foreign codes; this crate is that layer for the
//! reproduction. A [`CompileService`] accepts batches of named MiniFort
//! suites ([`CompileService::compile_many`]), fans compiles out across a
//! bounded worker pool, and keeps two caches alive *across* compiles:
//!
//! * a shared [`SharedFactsStore`] (the `AnalysisCache` promoted from
//!   per-compile to cross-compile), keyed by the full build identity —
//!   capabilities, op budget, base interner, resolved-program
//!   fingerprint — so adopting an entry can never change a report;
//! * a suite-level **result cache** keyed by raw source bytes plus the
//!   compile-relevant profile identity (everything except `threads`,
//!   which reports are invariant to), so recompiling an already-seen
//!   suite is a lookup, not a compile.
//!
//! Both caches are LRU-bounded; eviction costs rebuild time, never
//! correctness. Caching never changes what the service answers: two
//! batches differing only in cache temperature, worker width, or
//! arrival order produce bit-identical per-suite reports
//! ([`CompileResult::report_signature`] equality — pinned by this
//! crate's tests).
//!
//! Containment: every suite compiles through the recovering front end
//! inside a panic sandbox, so one garbled request degrades exactly one
//! response — the batch API always returns one [`SuiteOutcome`] per
//! request, and the daemon loop ([`daemon::serve`]) never dies on
//! hostile input.

pub mod daemon;

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use apar_analysis::{SharedFactsStore, SharedStats};
use apar_core::jsonio::{Json, ToJson};
use apar_core::{CompileResult, Compiler, CompilerProfile, EmitResult};

/// One named compilation request.
#[derive(Clone, Debug)]
pub struct SuiteRequest {
    pub name: String,
    pub source: String,
}

impl SuiteRequest {
    pub fn new(name: impl Into<String>, source: impl Into<String>) -> Self {
        SuiteRequest {
            name: name.into(),
            source: source.into(),
        }
    }
}

/// Everything that bounds a [`CompileService`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Compiler profile every suite is compiled under.
    pub profile: CompilerProfile,
    /// Worker pool width for one batch (1 = fully sequential; reports
    /// are bit-identical at every value).
    pub workers: usize,
    /// Also run the source-to-source backend and keep the emitted
    /// artifact ([`SuiteArtifact::Emitted`]).
    pub emit: bool,
    /// Shared facts store: maximum retained entries.
    pub facts_entries: usize,
    /// Shared facts store: approximate byte bound (printed-program
    /// length as the cost proxy).
    pub facts_bytes: usize,
    /// Suite result cache: maximum retained entries.
    pub result_entries: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            profile: CompilerProfile::polaris2008(),
            workers: 4,
            emit: false,
            facts_entries: 256,
            facts_bytes: 64 << 20,
            result_entries: 256,
        }
    }
}

/// How a suite in a batch was served.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Served {
    /// Compiled from scratch (possibly adopting shared analysis facts).
    Cold,
    /// Answered from the cross-batch result cache — no compile ran.
    CacheHit,
    /// Duplicate of an earlier suite in the *same* batch; compiled once,
    /// result shared. Counted separately from hits and misses.
    Deduped,
}

impl Served {
    pub fn label(&self) -> &'static str {
        match self {
            Served::Cold => "cold",
            Served::CacheHit => "hit",
            Served::Deduped => "dedup",
        }
    }
}

/// What the service produced for one suite.
#[derive(Debug)]
pub enum SuiteArtifact {
    /// Analysis + transformation only (`ServiceConfig::emit == false`).
    Compiled(Box<CompileResult>),
    /// Full pipeline through the source-to-source backend.
    Emitted(Box<EmitResult>),
    /// A panic escaped the recovering compiler — contained here so the
    /// batch (and the daemon) survive. Should never happen; the message
    /// is kept for the response.
    Failed(String),
}

impl SuiteArtifact {
    /// The compile result, when one exists.
    pub fn compile(&self) -> Option<&CompileResult> {
        match self {
            SuiteArtifact::Compiled(r) => Some(r),
            SuiteArtifact::Emitted(e) => Some(&e.result),
            SuiteArtifact::Failed(_) => None,
        }
    }

    /// The identity string of the underlying report (empty for
    /// failures) — what the cache-transparency tests compare.
    pub fn signature(&self) -> String {
        self.compile().map(|r| r.report_signature()).unwrap_or_default()
    }

    /// Frontend diagnostics the recovering compile accumulated.
    pub fn diag_count(&self) -> usize {
        self.compile().map_or(0, |r| r.report.diags.len())
    }
}

/// One per-request answer from [`CompileService::compile_many`].
#[derive(Debug)]
pub struct SuiteOutcome {
    pub name: String,
    pub served: Served,
    /// Wall seconds this suite cost the service (near zero for
    /// `CacheHit`/`Deduped`).
    pub wall_s: f64,
    /// The artifact — shared (`Arc`) between deduplicated requests.
    pub artifact: Arc<SuiteArtifact>,
}

/// Service counters for one batch (or, from
/// [`CompileService::cumulative_stats`], the service's lifetime).
#[derive(Clone, Debug)]
pub struct ServiceStats {
    /// Requests answered.
    pub suites: usize,
    /// Requests that ran a compile.
    pub cold: usize,
    /// Requests answered from the result cache.
    pub result_hits: usize,
    /// In-batch duplicates that shared an owner's compile.
    pub deduped: usize,
    /// Requests whose compile panicked (contained as
    /// [`SuiteArtifact::Failed`]).
    pub failed: usize,
    /// Result-cache entries evicted by the LRU bound.
    pub result_evictions: u64,
    /// Shared facts-store counters: hits, misses, structured
    /// [`CacheRefusal`](SharedStats::refusals) count (budget-tripped or
    /// panicked builds the cache refused to retain — *not* misses),
    /// evictions, and residency gauges.
    pub facts: SharedStats,
    /// Wall seconds for the whole batch.
    pub wall_s: f64,
    /// Aggregate throughput (`suites / wall_s`).
    pub suites_per_s: f64,
    /// Per-suite wall seconds, in request order.
    pub per_suite_wall_s: Vec<(String, f64)>,
}

impl ToJson for ServiceStats {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("suites", self.suites.to_json()),
            ("cold", self.cold.to_json()),
            ("result_hits", self.result_hits.to_json()),
            ("deduped", self.deduped.to_json()),
            ("failed", self.failed.to_json()),
            ("result_evictions", self.result_evictions.to_json()),
            ("facts_hits", self.facts.hits.to_json()),
            ("facts_misses", self.facts.misses.to_json()),
            ("facts_refusals", self.facts.refusals.to_json()),
            ("facts_evictions", self.facts.evictions.to_json()),
            ("facts_entries", self.facts.entries.to_json()),
            ("facts_approx_bytes", self.facts.approx_bytes.to_json()),
            ("wall_s", self.wall_s.to_json()),
            ("suites_per_s", self.suites_per_s.to_json()),
            ("per_suite_wall_s", self.per_suite_wall_s.to_json()),
        ])
    }
}

/// A completed batch: one outcome per request, in request order, plus
/// the batch-scoped stats.
#[derive(Debug)]
pub struct Batch {
    pub outcomes: Vec<SuiteOutcome>,
    pub stats: ServiceStats,
}

/// LRU-bounded suite result cache.
struct ResultCache {
    map: HashMap<u64, (Arc<SuiteArtifact>, u64)>,
    tick: u64,
    cap: usize,
    evictions: u64,
}

impl ResultCache {
    fn new(cap: usize) -> Self {
        ResultCache {
            map: HashMap::new(),
            tick: 0,
            cap: cap.max(1),
            evictions: 0,
        }
    }

    fn get(&mut self, key: u64) -> Option<Arc<SuiteArtifact>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(&key).map(|(v, last)| {
            *last = tick;
            Arc::clone(v)
        })
    }

    fn insert(&mut self, key: u64, value: Arc<SuiteArtifact>) {
        self.tick += 1;
        self.map.insert(key, (value, self.tick));
        while self.map.len() > self.cap {
            let oldest = self
                .map
                .iter()
                .min_by_key(|(_, (_, last))| *last)
                .map(|(k, _)| *k)
                .expect("nonempty over cap");
            self.map.remove(&oldest);
            self.evictions += 1;
        }
    }
}

/// The service: a worker pool plus the two cross-compile caches.
///
/// Thread-safe (`&self` methods); wrap in an `Arc` to share between a
/// daemon loop and library callers.
pub struct CompileService {
    config: ServiceConfig,
    facts: Arc<SharedFactsStore>,
    results: Mutex<ResultCache>,
    // Lifetime counters (the daemon's STATS answer).
    suites: AtomicUsize,
    cold: AtomicUsize,
    hits: AtomicUsize,
    deduped: AtomicUsize,
    failed: AtomicUsize,
    /// Cumulative busy wall, in microseconds.
    busy_us: AtomicU64,
}

impl CompileService {
    pub fn new(config: ServiceConfig) -> Self {
        let facts = Arc::new(SharedFactsStore::bounded(
            config.facts_entries,
            config.facts_bytes,
        ));
        Self::with_facts_store(config, facts)
    }

    /// A service sharing a caller-owned facts store — how several
    /// service instances (tenants, or a fresh client with an empty
    /// result cache) pool their analysis work. The config's
    /// `facts_entries`/`facts_bytes` are ignored; the store keeps the
    /// bounds it was built with.
    pub fn with_facts_store(config: ServiceConfig, facts: Arc<SharedFactsStore>) -> Self {
        let results = Mutex::new(ResultCache::new(config.result_entries));
        CompileService {
            config,
            facts,
            results,
            suites: AtomicUsize::new(0),
            cold: AtomicUsize::new(0),
            hits: AtomicUsize::new(0),
            deduped: AtomicUsize::new(0),
            failed: AtomicUsize::new(0),
            busy_us: AtomicU64::new(0),
        }
    }

    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The shared analysis-facts store (for inspection in tests and
    /// benchmarks).
    pub fn facts_store(&self) -> &Arc<SharedFactsStore> {
        &self.facts
    }

    /// Cache key for one suite: raw source bytes plus the
    /// compile-relevant profile identity. `threads` is excluded —
    /// reports are thread-invariant, so worker width must not fragment
    /// the cache. Raw source (not the resolved-program fingerprint) is
    /// deliberate: two garbled sources can *resolve* identically yet
    /// carry different recovery diagnostics, which are part of the
    /// answer.
    fn suite_key(&self, source: &str) -> u64 {
        let mut norm = self.config.profile.clone();
        norm.threads = 1;
        let mut h = DefaultHasher::new();
        format!("{:?}", norm).hash(&mut h);
        self.config.emit.hash(&mut h);
        source.hash(&mut h);
        h.finish()
    }

    /// Compile one suite outside a batch (a one-element
    /// [`CompileService::compile_many`]).
    pub fn compile_one(&self, req: SuiteRequest) -> SuiteOutcome {
        self.compile_many(&[req])
            .outcomes
            .pop()
            .expect("one outcome per request")
    }

    /// Compile a batch: dedupe identical suites, answer repeats from the
    /// result cache, fan the rest out across the worker pool, and
    /// return one outcome per request in request order plus the
    /// batch-scoped stats.
    pub fn compile_many(&self, batch: &[SuiteRequest]) -> Batch {
        let t0 = Instant::now();
        let facts_before = self.facts.stats();

        // Plan: the first request with a given key owns the compile (or
        // the cache lookup); later identical requests are deduped onto
        // the owner.
        let keys: Vec<u64> = batch.iter().map(|r| self.suite_key(&r.source)).collect();
        let mut owner_of: HashMap<u64, usize> = HashMap::new();
        // Per request: Some(owner index) when deduped, None when owner.
        let dup_of: Vec<Option<usize>> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| match owner_of.get(k) {
                Some(&o) => Some(o),
                None => {
                    owner_of.insert(*k, i);
                    None
                }
            })
            .collect();

        // Owners: try the result cache under one lock, else queue a job.
        let mut cached: HashMap<usize, (Arc<SuiteArtifact>, f64)> = HashMap::new();
        let mut jobs: Vec<usize> = Vec::new();
        {
            let mut cache = self.results.lock().expect("result cache lock");
            for (i, dup) in dup_of.iter().enumerate() {
                if dup.is_some() {
                    continue;
                }
                let tl = Instant::now();
                match cache.get(keys[i]) {
                    Some(hit) => {
                        cached.insert(i, (hit, tl.elapsed().as_secs_f64()));
                    }
                    None => jobs.push(i),
                }
            }
        }

        // Fan the jobs out across the bounded pool. Slots are indexed
        // by job position, so assembly below is deterministic in
        // request order regardless of completion order.
        let slots: Vec<OnceLock<(Arc<SuiteArtifact>, f64)>> =
            jobs.iter().map(|_| OnceLock::new()).collect();
        let width = self.config.workers.max(1).min(jobs.len().max(1));
        if width <= 1 {
            for (j, &i) in jobs.iter().enumerate() {
                let _ = slots[j].set(self.run_job(&batch[i]));
            }
        } else {
            let next = AtomicUsize::new(0);
            std::thread::scope(|s| {
                for _ in 0..width {
                    s.spawn(|| loop {
                        let j = next.fetch_add(1, Ordering::Relaxed);
                        if j >= jobs.len() {
                            break;
                        }
                        let _ = slots[j].set(self.run_job(&batch[jobs[j]]));
                    });
                }
            });
        }

        // Retain fresh results (never failures — a poisoned entry would
        // replay the failure forever).
        let mut fresh: HashMap<usize, (Arc<SuiteArtifact>, f64)> = HashMap::new();
        {
            let mut cache = self.results.lock().expect("result cache lock");
            for (j, &i) in jobs.iter().enumerate() {
                let (art, wall) = slots[j].get().expect("job completed").clone();
                if !matches!(*art, SuiteArtifact::Failed(_)) {
                    cache.insert(keys[i], Arc::clone(&art));
                }
                fresh.insert(i, (art, wall));
            }
        }

        // Assemble outcomes in request order.
        let mut outcomes: Vec<SuiteOutcome> = Vec::with_capacity(batch.len());
        let mut stats_cold = 0usize;
        let mut stats_hits = 0usize;
        let mut stats_dedup = 0usize;
        let mut stats_failed = 0usize;
        for (i, req) in batch.iter().enumerate() {
            let (served, artifact, wall_s) = match dup_of[i] {
                Some(owner) => {
                    stats_dedup += 1;
                    let art = cached
                        .get(&owner)
                        .or_else(|| fresh.get(&owner))
                        .map(|(a, _)| Arc::clone(a))
                        .expect("owner resolved");
                    (Served::Deduped, art, 0.0)
                }
                None => match cached.get(&i) {
                    Some((art, wall)) => {
                        stats_hits += 1;
                        (Served::CacheHit, Arc::clone(art), *wall)
                    }
                    None => {
                        let (art, wall) = fresh.get(&i).expect("fresh result").clone();
                        stats_cold += 1;
                        (Served::Cold, art, wall)
                    }
                },
            };
            if matches!(*artifact, SuiteArtifact::Failed(_)) {
                stats_failed += 1;
            }
            outcomes.push(SuiteOutcome {
                name: req.name.clone(),
                served,
                wall_s,
                artifact,
            });
        }

        let wall_s = t0.elapsed().as_secs_f64();
        let result_evictions = self.results.lock().expect("result cache lock").evictions;
        let stats = ServiceStats {
            suites: batch.len(),
            cold: stats_cold,
            result_hits: stats_hits,
            deduped: stats_dedup,
            failed: stats_failed,
            result_evictions,
            facts: self.facts.stats().since(&facts_before),
            wall_s,
            suites_per_s: if wall_s > 0.0 {
                batch.len() as f64 / wall_s
            } else {
                0.0
            },
            per_suite_wall_s: outcomes
                .iter()
                .map(|o| (o.name.clone(), o.wall_s))
                .collect(),
        };

        // Fold into the lifetime counters.
        self.suites.fetch_add(batch.len(), Ordering::Relaxed);
        self.cold.fetch_add(stats_cold, Ordering::Relaxed);
        self.hits.fetch_add(stats_hits, Ordering::Relaxed);
        self.deduped.fetch_add(stats_dedup, Ordering::Relaxed);
        self.failed.fetch_add(stats_failed, Ordering::Relaxed);
        self.busy_us
            .fetch_add((wall_s * 1e6) as u64, Ordering::Relaxed);

        Batch { outcomes, stats }
    }

    /// Lifetime counters since the service was created (the daemon's
    /// `STATS` answer). Gauges and facts counters are absolute.
    pub fn cumulative_stats(&self) -> ServiceStats {
        let wall_s = self.busy_us.load(Ordering::Relaxed) as f64 / 1e6;
        let suites = self.suites.load(Ordering::Relaxed);
        ServiceStats {
            suites,
            cold: self.cold.load(Ordering::Relaxed),
            result_hits: self.hits.load(Ordering::Relaxed),
            deduped: self.deduped.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            result_evictions: self.results.lock().expect("result cache lock").evictions,
            facts: self.facts.stats(),
            wall_s,
            suites_per_s: if wall_s > 0.0 {
                suites as f64 / wall_s
            } else {
                0.0
            },
            per_suite_wall_s: Vec::new(),
        }
    }

    /// One compile, sandboxed: the recovering front end makes the
    /// compile total over arbitrary bytes, and `catch_unwind` contains
    /// anything that still escapes so the pool (and the daemon) live on.
    fn run_job(&self, req: &SuiteRequest) -> (Arc<SuiteArtifact>, f64) {
        let t = Instant::now();
        let compiler = Compiler::new(self.config.profile.clone())
            .with_shared_facts(Arc::clone(&self.facts));
        let emit = self.config.emit;
        let art = catch_unwind(AssertUnwindSafe(|| {
            let r = compiler.compile_source_recovering(&req.name, &req.source);
            if emit {
                SuiteArtifact::Emitted(Box::new(compiler.emit(r)))
            } else {
                SuiteArtifact::Compiled(Box::new(r))
            }
        }))
        .unwrap_or_else(|p| {
            let msg = p
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| p.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic".to_string());
            SuiteArtifact::Failed(msg)
        });
        (Arc::new(art), t.elapsed().as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "\
PROGRAM MAIN
REAL A(100)
INTEGER I
DO I = 1, 100
A(I) = A(I) + 1.0
ENDDO
END
";

    const SRC2: &str = "\
PROGRAM MAIN
REAL B(50)
INTEGER J
DO J = 1, 50
B(J) = 2.0 * B(J)
ENDDO
END
";

    fn svc() -> CompileService {
        CompileService::new(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        })
    }

    #[test]
    fn second_batch_is_served_from_the_result_cache() {
        let s = svc();
        let batch = [SuiteRequest::new("a", SRC)];
        let first = s.compile_many(&batch);
        assert_eq!(first.stats.cold, 1);
        assert_eq!(first.stats.result_hits, 0);
        let second = s.compile_many(&batch);
        assert_eq!(second.stats.cold, 0);
        assert_eq!(second.stats.result_hits, 1);
        assert_eq!(
            first.outcomes[0].artifact.signature(),
            second.outcomes[0].artifact.signature()
        );
    }

    #[test]
    fn in_batch_duplicates_are_deduped_not_misses() {
        let s = svc();
        let batch = [
            SuiteRequest::new("a", SRC),
            SuiteRequest::new("b", SRC2),
            SuiteRequest::new("a-again", SRC),
        ];
        let out = s.compile_many(&batch);
        assert_eq!(out.stats.cold, 2, "two distinct sources compile");
        assert_eq!(out.stats.deduped, 1, "the repeat rides along");
        assert_eq!(out.stats.result_hits, 0);
        assert_eq!(out.outcomes[0].served, Served::Cold);
        assert_eq!(out.outcomes[2].served, Served::Deduped);
        assert!(Arc::ptr_eq(
            &out.outcomes[0].artifact,
            &out.outcomes[2].artifact
        ));
    }

    #[test]
    fn duplicate_of_a_cached_suite_is_hit_plus_dedup() {
        let s = svc();
        s.compile_many(&[SuiteRequest::new("warm", SRC)]);
        let out = s.compile_many(&[
            SuiteRequest::new("x", SRC),
            SuiteRequest::new("y", SRC),
        ]);
        assert_eq!(out.outcomes[0].served, Served::CacheHit);
        assert_eq!(out.outcomes[1].served, Served::Deduped);
        assert_eq!(out.stats.cold, 0);
    }

    #[test]
    fn result_cache_is_lru_bounded_and_counts_evictions() {
        let s = CompileService::new(ServiceConfig {
            workers: 1,
            result_entries: 1,
            ..ServiceConfig::default()
        });
        s.compile_many(&[SuiteRequest::new("a", SRC)]);
        s.compile_many(&[SuiteRequest::new("b", SRC2)]); // evicts a
        let again = s.compile_many(&[SuiteRequest::new("a", SRC)]);
        assert_eq!(again.stats.cold, 1, "a was evicted, recompiles");
        assert!(s.cumulative_stats().result_evictions >= 1);
    }

    #[test]
    fn profile_identity_keys_the_result_cache_but_threads_do_not() {
        let s = svc();
        s.compile_many(&[SuiteRequest::new("a", SRC)]);
        // Same source under a different worker width would still hit —
        // the key ignores threads by construction.
        let k1 = s.suite_key(SRC);
        let full = CompileService::new(ServiceConfig {
            profile: CompilerProfile::full(),
            ..ServiceConfig::default()
        });
        assert_ne!(k1, full.suite_key(SRC), "different profiles, different keys");
        let mut threaded_cfg = ServiceConfig::default();
        threaded_cfg.profile = threaded_cfg.profile.with_threads(8);
        let threaded = CompileService::new(threaded_cfg);
        assert_eq!(k1, threaded.suite_key(SRC), "threads excluded from key");
    }

    #[test]
    fn cumulative_stats_accumulate_across_batches() {
        let s = svc();
        s.compile_many(&[SuiteRequest::new("a", SRC)]);
        s.compile_many(&[SuiteRequest::new("a", SRC)]);
        let c = s.cumulative_stats();
        assert_eq!(c.suites, 2);
        assert_eq!(c.cold, 1);
        assert_eq!(c.result_hits, 1);
    }
}

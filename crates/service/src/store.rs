//! Crash-safe persistent store for the service's three cache tiers.
//!
//! Layout: one append-only record log per tier (`facts.log`,
//! `loops.log`, `results.log`) in the store directory, each starting
//! with an 8-byte versioned file header and containing length-prefixed,
//! CRC-32-checksummed records whose payloads are compact-JSON documents
//! (the workspace's hand-rolled `jsonio` — no deps). Snapshots are
//! compacted by writing `<tier>.log.tmp` and atomically renaming it
//! over the log.
//!
//! Trust model: **nothing read from disk is believed.** The loader is
//! total over arbitrary bytes — a wrong-version header refuses the
//! whole file, a torn tail, flipped bit, or misframed record refuses
//! exactly the damaged region (resynchronizing on the record magic) —
//! and every surviving payload still only *proposes* state: facts
//! records are build instructions replayed through the real builders
//! ([`apar_analysis::rebuild_facts`]), loop records must parse field-
//! by-field ([`SplicedLoop::from_json`]) and then pass the same
//! structural `matches` re-verification as any live record before a
//! splice, and result records must reproduce their recorded report
//! signature from a live compile before the cache believes them. Every
//! refusal is counted, never panicked on.
//!
//! Writes go through an injectable fault shim ([`StoreFaults`]):
//! deterministic, seeded short writes, failed flushes/renames, ENOSPC
//! and read errors — the same fault-plan style as the runtime's
//! `FaultPlan`. A store that cannot write (unwritable directory, or a
//! second service holding the single-writer lock) degrades to
//! read-only: recovery still works, appends are skipped, and the
//! condition is a structured gauge, not an error.

use std::collections::HashSet;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use apar_core::jsonio::{crc32, parse, JVal, Json};

/// File header: 4 magic bytes + 4 version bytes. Bumping the version
/// makes every older file refuse wholesale (one `refused_version` per
/// file) instead of misparsing.
const FILE_MAGIC: &[u8; 8] = b"APST0001";
/// Per-record magic. The 0xA5 byte cannot occur as a UTF-8 lead byte
/// of the compact-JSON payloads this store writes, which keeps resync
/// scans from landing inside a healthy record's text.
const REC_MAGIC: &[u8; 4] = &[0xA5, b'R', b'E', b'C'];
/// Sanity bound on one record's payload; a length field above this is
/// corruption by definition, not a large record.
const MAX_RECORD: u64 = 1 << 24;

/// The three persisted cache tiers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    /// `SharedFactsStore` program facts, persisted as build provenance.
    Facts,
    /// Per-loop incremental records (`SplicedLoop`).
    Loops,
    /// Suite results, persisted as `(name, source, signature)` echoes.
    Results,
}

impl Tier {
    pub const ALL: [Tier; 3] = [Tier::Facts, Tier::Loops, Tier::Results];

    /// The tier's log file name inside the store directory.
    pub fn file_name(&self) -> &'static str {
        match self {
            Tier::Facts => "facts.log",
            Tier::Loops => "loops.log",
            Tier::Results => "results.log",
        }
    }
}

/// Deterministic, seeded fault plan for store I/O, in the style of the
/// runtime's `FaultPlan`. Each `*_1_in: n` arms one failure mode to
/// fire on roughly every n-th draw of a seeded counter sequence (0
/// disables the mode). The sequence is a pure function of the seed and
/// the number of prior draws, so a failing run replays exactly.
#[derive(Clone, Copy, Debug, Default)]
pub struct StoreFaults {
    pub seed: u64,
    /// Whole-append failures (ENOSPC-style: no bytes land).
    pub write_fail_1_in: u64,
    /// Torn appends: only a seeded prefix of the buffer lands.
    pub short_write_1_in: u64,
    /// Failed flush after a write that landed.
    pub flush_fail_1_in: u64,
    /// Failed atomic rename during compaction.
    pub rename_fail_1_in: u64,
    /// Read errors during recovery (the tier loads as empty).
    pub read_fail_1_in: u64,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Structured counters and gauges for the durable store. This is the
/// *single* definition the batch stats, the daemon `STATS` reply, and
/// the daemon `HEALTH` reply all render through ([`StoreStats::fields`]),
/// so the three reports cannot drift apart.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StoreStats {
    /// Gauge: a store directory is attached.
    pub enabled: bool,
    /// Gauge: the store degraded to read-only (unwritable directory or
    /// another writer holds the lock).
    pub read_only: bool,
    /// Recovery adoptions per tier.
    pub recovered_facts: u64,
    pub recovered_loops: u64,
    pub recovered_results: u64,
    /// Total recovery refusals (sum of the `refused_*` breakdown).
    pub recovery_refusals: u64,
    /// Torn tails, bad record magic, implausible lengths, read errors.
    pub refused_framing: u64,
    /// Checksum mismatches.
    pub refused_crc: u64,
    /// CRC-valid payloads that failed to parse or validate field-wise.
    pub refused_parse: u64,
    /// Wrong-version (or missing) file headers — one per refused file.
    pub refused_version: u64,
    /// Records for a different build identity (capability set, budget,
    /// or profile) than the recovering service.
    pub refused_identity: u64,
    /// Records that parsed but failed semantic re-verification (facts
    /// replay mismatch, result signature mismatch).
    pub refused_verify: u64,
    /// Records appended to the logs.
    pub appended_records: u64,
    /// Append/compaction batches that failed (fault shim or real I/O).
    pub append_errors: u64,
    /// Snapshot compactions completed.
    pub compactions: u64,
    /// Gauge: total on-disk bytes across the tier logs.
    pub store_bytes: u64,
}

impl StoreStats {
    /// Counter deltas since `earlier`; gauges stay absolute.
    pub fn since(&self, earlier: &StoreStats) -> StoreStats {
        StoreStats {
            enabled: self.enabled,
            read_only: self.read_only,
            recovered_facts: self.recovered_facts - earlier.recovered_facts,
            recovered_loops: self.recovered_loops - earlier.recovered_loops,
            recovered_results: self.recovered_results - earlier.recovered_results,
            recovery_refusals: self.recovery_refusals - earlier.recovery_refusals,
            refused_framing: self.refused_framing - earlier.refused_framing,
            refused_crc: self.refused_crc - earlier.refused_crc,
            refused_parse: self.refused_parse - earlier.refused_parse,
            refused_version: self.refused_version - earlier.refused_version,
            refused_identity: self.refused_identity - earlier.refused_identity,
            refused_verify: self.refused_verify - earlier.refused_verify,
            appended_records: self.appended_records - earlier.appended_records,
            append_errors: self.append_errors - earlier.append_errors,
            compactions: self.compactions - earlier.compactions,
            store_bytes: self.store_bytes,
        }
    }

    /// The canonical JSON field list. Every report that mentions store
    /// state builds from this one function.
    pub fn fields(&self) -> Vec<(&'static str, Json)> {
        vec![
            ("store_enabled", Json::Bool(self.enabled)),
            ("store_read_only", Json::Bool(self.read_only)),
            ("recovered_facts", Json::Int(self.recovered_facts as i64)),
            ("recovered_loops", Json::Int(self.recovered_loops as i64)),
            ("recovered_results", Json::Int(self.recovered_results as i64)),
            ("recovery_refusals", Json::Int(self.recovery_refusals as i64)),
            ("refused_framing", Json::Int(self.refused_framing as i64)),
            ("refused_crc", Json::Int(self.refused_crc as i64)),
            ("refused_parse", Json::Int(self.refused_parse as i64)),
            ("refused_version", Json::Int(self.refused_version as i64)),
            ("refused_identity", Json::Int(self.refused_identity as i64)),
            ("refused_verify", Json::Int(self.refused_verify as i64)),
            ("appended_records", Json::Int(self.appended_records as i64)),
            ("append_errors", Json::Int(self.append_errors as i64)),
            ("compactions", Json::Int(self.compactions as i64)),
            ("store_bytes", Json::Int(self.store_bytes as i64)),
        ]
    }
}

/// Everything the loader salvaged from the tier logs: parsed payloads
/// in log order. Framing/CRC/parse refusals were already counted by
/// the store; semantic validation (identity, re-verification) is the
/// caller's job, reported back via `note_*`.
#[derive(Debug, Default)]
pub struct LoadedTiers {
    pub facts: Vec<JVal>,
    pub loops: Vec<JVal>,
    pub results: Vec<JVal>,
}

/// The durable store: framing, files, the single-writer lock, fault
/// injection, and counters. Semantic record schemas live with the
/// service (`CompileService`), which is also what replays recovery.
pub struct PersistentStore {
    dir: PathBuf,
    /// `Some(reason)` once degraded: appends and compactions become
    /// no-ops, recovery still reads.
    read_only: Option<String>,
    lock_owned: bool,
    faults: Option<StoreFaults>,
    fault_ctr: AtomicU64,
    /// Compaction triggers when a tier log exceeds this many bytes.
    compact_bytes: u64,
    /// Keys already persisted per tier, so the post-batch append pass
    /// only writes news. Advisory (duplicates on disk are deduped by
    /// recovery anyway); reset by compaction to the snapshot's keys.
    seen: Mutex<[HashSet<u64>; 3]>,
    recovered: [AtomicU64; 3],
    refused_framing: AtomicU64,
    refused_crc: AtomicU64,
    refused_parse: AtomicU64,
    refused_version: AtomicU64,
    refused_identity: AtomicU64,
    refused_verify: AtomicU64,
    appended: AtomicU64,
    append_errors: AtomicU64,
    compactions: AtomicU64,
}

impl PersistentStore {
    /// Opens (creating if needed) a store directory. Never fails: an
    /// uncreatable or unwritable directory, or one already locked by a
    /// live writer, yields a read-only store with a structured reason.
    pub fn open(dir: impl AsRef<Path>) -> Self {
        Self::open_inner(dir.as_ref(), None)
    }

    /// [`PersistentStore::open`] with a fault plan armed on every
    /// subsequent read and write.
    pub fn open_with_faults(dir: impl AsRef<Path>, faults: StoreFaults) -> Self {
        Self::open_inner(dir.as_ref(), Some(faults))
    }

    fn open_inner(dir: &Path, faults: Option<StoreFaults>) -> Self {
        let mut read_only = None;
        let mut lock_owned = false;
        if let Err(e) = fs::create_dir_all(dir) {
            read_only = Some(format!("cannot create store directory: {}", e));
        } else {
            match acquire_lock(dir) {
                Ok(true) => lock_owned = true,
                Ok(false) => unreachable!("acquire_lock returns Ok(true) or Err"),
                Err(reason) => read_only = Some(reason),
            }
        }
        PersistentStore {
            dir: dir.to_path_buf(),
            read_only,
            lock_owned,
            faults,
            fault_ctr: AtomicU64::new(0),
            compact_bytes: 1 << 20,
            seen: Mutex::new([HashSet::new(), HashSet::new(), HashSet::new()]),
            recovered: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
            refused_framing: AtomicU64::new(0),
            refused_crc: AtomicU64::new(0),
            refused_parse: AtomicU64::new(0),
            refused_version: AtomicU64::new(0),
            refused_identity: AtomicU64::new(0),
            refused_verify: AtomicU64::new(0),
            appended: AtomicU64::new(0),
            append_errors: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
        }
    }

    /// Lowers the compaction threshold (tests exercise compaction
    /// without megabytes of records).
    pub fn with_compact_bytes(mut self, bytes: u64) -> Self {
        self.compact_bytes = bytes.max(64);
        self
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Why the store is read-only, if it is.
    pub fn read_only_reason(&self) -> Option<&str> {
        self.read_only.as_deref()
    }

    fn fault(&self, pick: impl Fn(&StoreFaults) -> u64) -> bool {
        let Some(f) = &self.faults else { return false };
        let one_in = pick(f);
        if one_in == 0 {
            return false;
        }
        let n = self.fault_ctr.fetch_add(1, Ordering::SeqCst);
        splitmix64(f.seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15)).is_multiple_of(one_in)
    }

    fn tier_path(&self, tier: Tier) -> PathBuf {
        self.dir.join(tier.file_name())
    }

    /// Marks `key` persisted for `tier`; returns true when it was new
    /// (i.e. the caller should append its record).
    pub fn mark_seen(&self, tier: Tier, key: u64) -> bool {
        self.seen.lock().unwrap_or_else(|p| p.into_inner())[tier_ix(tier)].insert(key)
    }

    /// Replaces `tier`'s persisted-key set (after a compaction rewrote
    /// the log from a snapshot).
    fn reset_seen(&self, tier: Tier, keys: impl IntoIterator<Item = u64>) {
        let mut seen = self.seen.lock().unwrap_or_else(|p| p.into_inner());
        seen[tier_ix(tier)] = keys.into_iter().collect();
    }

    /// Reads and frames-decodes every tier log. Total: any damage is
    /// counted and skipped, never raised.
    pub fn load(&self) -> LoadedTiers {
        let mut out = LoadedTiers::default();
        for tier in Tier::ALL {
            let path = self.tier_path(tier);
            let bytes = if self.fault(|f| f.read_fail_1_in) {
                self.refused_framing.fetch_add(1, Ordering::Relaxed);
                continue; // injected read error: tier loads as empty
            } else {
                match fs::read(&path) {
                    Ok(b) => b,
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                    Err(_) => {
                        self.refused_framing.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                }
            };
            let dest = match tier {
                Tier::Facts => &mut out.facts,
                Tier::Loops => &mut out.loops,
                Tier::Results => &mut out.results,
            };
            self.scan_records(&bytes, dest);
        }
        out
    }

    /// Decodes one log's bytes into `dest`, counting refusals.
    fn scan_records(&self, bytes: &[u8], dest: &mut Vec<JVal>) {
        if bytes.len() < FILE_MAGIC.len() || &bytes[..FILE_MAGIC.len()] != FILE_MAGIC {
            // Wrong or truncated header: the whole file is refused as
            // one structured event (stale version / foreign file).
            self.refused_version.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut pos = FILE_MAGIC.len();
        // Resynchronization: after any framing damage, scan forward for
        // the next record magic instead of giving up — one truncated or
        // bit-flipped record must not take the rest of the log with it.
        let resync = |from: usize| -> Option<usize> {
            bytes[from..]
                .windows(REC_MAGIC.len())
                .position(|w| w == *REC_MAGIC)
                .map(|i| from + i)
        };
        while pos < bytes.len() {
            if bytes[pos..].len() < REC_MAGIC.len() || &bytes[pos..pos + REC_MAGIC.len()] != REC_MAGIC
            {
                // Garbage where a record should start (torn compaction,
                // flipped magic, trailing junk).
                self.refused_framing.fetch_add(1, Ordering::Relaxed);
                match resync(pos + 1) {
                    Some(next) => {
                        pos = next;
                        continue;
                    }
                    None => return,
                }
            }
            let header_end = pos + REC_MAGIC.len() + 8;
            if bytes.len() < header_end {
                self.refused_framing.fetch_add(1, Ordering::Relaxed); // torn tail
                return;
            }
            let len = u32::from_le_bytes(
                bytes[pos + REC_MAGIC.len()..pos + REC_MAGIC.len() + 4]
                    .try_into()
                    .expect("4 bytes"),
            ) as u64;
            let crc = u32::from_le_bytes(
                bytes[pos + REC_MAGIC.len() + 4..header_end]
                    .try_into()
                    .expect("4 bytes"),
            );
            let end = header_end as u64 + len;
            if len > MAX_RECORD || end > bytes.len() as u64 {
                // Implausible or past-EOF length: either a corrupt
                // length field or a torn final record.
                self.refused_framing.fetch_add(1, Ordering::Relaxed);
                match resync(pos + REC_MAGIC.len()) {
                    Some(next) => {
                        pos = next;
                        continue;
                    }
                    None => return,
                }
            }
            let payload = &bytes[header_end..end as usize];
            pos = end as usize;
            if crc32(payload) != crc {
                self.refused_crc.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            match std::str::from_utf8(payload).ok().and_then(parse) {
                Some(v) => dest.push(v),
                None => {
                    self.refused_parse.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Frames and appends `payloads` to `tier`'s log (writing the file
    /// header first when the log is new). No-op when read-only. I/O
    /// failures — injected or real — count `append_errors`; a short
    /// write may leave a torn record, which recovery tolerates.
    pub fn append(&self, tier: Tier, payloads: &[Json]) {
        if payloads.is_empty() || self.read_only.is_some() {
            return;
        }
        let path = self.tier_path(tier);
        let need_header = fs::metadata(&path).map(|m| m.len() == 0).unwrap_or(true);
        let mut buf = Vec::new();
        if need_header {
            buf.extend_from_slice(FILE_MAGIC);
        }
        for p in payloads {
            frame_into(&mut buf, p);
        }
        if self.fault(|f| f.write_fail_1_in) {
            self.append_errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if self.fault(|f| f.short_write_1_in) {
            // Torn write: a seeded prefix lands, then "the power fails".
            let n = self.fault_ctr.fetch_add(1, Ordering::SeqCst);
            let cut = (splitmix64(n ^ 0xDEAD_BEEF) % buf.len() as u64) as usize;
            buf.truncate(cut);
            let _ = append_bytes(&path, &buf);
            self.append_errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
        match append_bytes(&path, &buf) {
            Ok(mut f) => {
                if self.fault(|f| f.flush_fail_1_in) || f.flush().is_err() {
                    self.append_errors.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.appended
                        .fetch_add(payloads.len() as u64, Ordering::Relaxed);
                }
            }
            Err(_) => {
                self.append_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// True when `tier`'s log has outgrown the compaction threshold.
    pub fn wants_compaction(&self, tier: Tier) -> bool {
        self.read_only.is_none() && self.file_len(tier) > self.compact_bytes
    }

    /// Rewrites `tier`'s log as a fresh snapshot of `(key, payload)`
    /// records via write-temp + atomic rename. On any failure the
    /// original log is left untouched (and still loadable).
    pub fn compact(&self, tier: Tier, records: &[(u64, Json)]) {
        if self.read_only.is_some() {
            return;
        }
        let mut buf = Vec::from(FILE_MAGIC.as_slice());
        for (_, p) in records {
            frame_into(&mut buf, p);
        }
        if self.fault(|f| f.write_fail_1_in) {
            self.append_errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if self.fault(|f| f.short_write_1_in) {
            let n = self.fault_ctr.fetch_add(1, Ordering::SeqCst);
            buf.truncate((splitmix64(n ^ 0xFEED_FACE) % buf.len().max(1) as u64) as usize);
        }
        let path = self.tier_path(tier);
        let tmp = self.dir.join(format!("{}.tmp", tier.file_name()));
        if fs::write(&tmp, &buf).is_err() || self.fault(|f| f.rename_fail_1_in) {
            let _ = fs::remove_file(&tmp);
            self.append_errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
        match fs::rename(&tmp, &path) {
            Ok(()) => {
                self.compactions.fetch_add(1, Ordering::Relaxed);
                self.reset_seen(tier, records.iter().map(|&(k, _)| k));
            }
            Err(_) => {
                let _ = fs::remove_file(&tmp);
                self.append_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn file_len(&self, tier: Tier) -> u64 {
        fs::metadata(self.tier_path(tier)).map(|m| m.len()).unwrap_or(0)
    }

    /// Records one adopted entry during recovery.
    pub fn note_recovered(&self, tier: Tier) {
        self.recovered[tier_ix(tier)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a recovery record refused for build-identity mismatch.
    pub fn note_identity_refusal(&self) {
        self.refused_identity.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a recovery record refused by semantic re-verification.
    pub fn note_verify_refusal(&self) {
        self.refused_verify.fetch_add(1, Ordering::Relaxed);
    }

    pub fn stats(&self) -> StoreStats {
        let refused_framing = self.refused_framing.load(Ordering::Relaxed);
        let refused_crc = self.refused_crc.load(Ordering::Relaxed);
        let refused_parse = self.refused_parse.load(Ordering::Relaxed);
        let refused_version = self.refused_version.load(Ordering::Relaxed);
        let refused_identity = self.refused_identity.load(Ordering::Relaxed);
        let refused_verify = self.refused_verify.load(Ordering::Relaxed);
        StoreStats {
            enabled: true,
            read_only: self.read_only.is_some(),
            recovered_facts: self.recovered[0].load(Ordering::Relaxed),
            recovered_loops: self.recovered[1].load(Ordering::Relaxed),
            recovered_results: self.recovered[2].load(Ordering::Relaxed),
            recovery_refusals: refused_framing
                + refused_crc
                + refused_parse
                + refused_version
                + refused_identity
                + refused_verify,
            refused_framing,
            refused_crc,
            refused_parse,
            refused_version,
            refused_identity,
            refused_verify,
            appended_records: self.appended.load(Ordering::Relaxed),
            append_errors: self.append_errors.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            store_bytes: Tier::ALL.iter().map(|&t| self.file_len(t)).sum(),
        }
    }
}

impl Drop for PersistentStore {
    fn drop(&mut self) {
        if self.lock_owned {
            let _ = fs::remove_file(self.dir.join("lock"));
            let canon = self
                .dir
                .canonicalize()
                .unwrap_or_else(|_| self.dir.clone());
            in_process_locks()
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .remove(&canon);
        }
    }
}

impl std::fmt::Debug for PersistentStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PersistentStore")
            .field("dir", &self.dir)
            .field("read_only", &self.read_only)
            .finish_non_exhaustive()
    }
}

fn tier_ix(tier: Tier) -> usize {
    match tier {
        Tier::Facts => 0,
        Tier::Loops => 1,
        Tier::Results => 2,
    }
}

/// Frames one payload: magic, payload length (u32 LE), CRC-32 of the
/// payload (u32 LE), compact-JSON payload bytes.
fn frame_into(buf: &mut Vec<u8>, payload: &Json) {
    let body = payload.render_compact().into_bytes();
    buf.extend_from_slice(REC_MAGIC);
    buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
    buf.extend_from_slice(&crc32(&body).to_le_bytes());
    buf.extend_from_slice(&body);
}

fn append_bytes(path: &Path, buf: &[u8]) -> std::io::Result<fs::File> {
    let mut f = fs::OpenOptions::new().create(true).append(true).open(path)?;
    f.write_all(buf)?;
    Ok(f)
}

/// Store directories locked by *this* process: a lock file carrying
/// our own pid is only stale if no live [`PersistentStore`] in this
/// process holds it (otherwise two in-process services would both
/// write; a pid-recycled leftover from a dead process must still be
/// stolen).
fn in_process_locks() -> &'static Mutex<HashSet<PathBuf>> {
    static LOCKS: std::sync::OnceLock<Mutex<HashSet<PathBuf>>> = std::sync::OnceLock::new();
    LOCKS.get_or_init(|| Mutex::new(HashSet::new()))
}

/// Single-writer guard: a `lock` file holding the owner's pid. A
/// stale lock (no such process) is stolen; a live one demotes this
/// opener to read-only. Best-effort by design — the guard exists so
/// two cooperating services on one host don't interleave appends, not
/// as a security boundary.
fn acquire_lock(dir: &Path) -> Result<bool, String> {
    let canon = dir.canonicalize().unwrap_or_else(|_| dir.to_path_buf());
    let path = dir.join("lock");
    for _ in 0..2 {
        match fs::OpenOptions::new().write(true).create_new(true).open(&path) {
            Ok(mut f) => {
                let _ = f.write_all(std::process::id().to_string().as_bytes());
                in_process_locks()
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .insert(canon);
                return Ok(true);
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                let holder = fs::read_to_string(&path)
                    .ok()
                    .and_then(|s| s.trim().parse::<u32>().ok());
                let held_here = in_process_locks()
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .contains(&canon);
                match holder {
                    Some(pid) if pid == std::process::id() && held_here => {
                        return Err(format!("locked by live writer pid {} (this process)", pid));
                    }
                    Some(pid) if pid != std::process::id() && pid_alive(pid) => {
                        return Err(format!("locked by live writer pid {}", pid));
                    }
                    _ => {
                        // Stale (dead pid, a recycled copy of our own
                        // pid, or unreadable): remove and retry once.
                        let _ = fs::remove_file(&path);
                    }
                }
            }
            Err(e) => return Err(format!("cannot create lock file: {}", e)),
        }
    }
    Err("lock contention: another writer re-acquired the stale lock".to_string())
}

#[cfg(target_os = "linux")]
fn pid_alive(pid: u32) -> bool {
    Path::new(&format!("/proc/{}", pid)).exists()
}

#[cfg(not(target_os = "linux"))]
fn pid_alive(_pid: u32) -> bool {
    // Without a portable liveness probe, assume live: the safe failure
    // mode is degrading a fresh opener to read-only, never two writers.
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "apar_store_test_{}_{}",
            std::process::id(),
            tag
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn payload(i: i64) -> Json {
        Json::Obj(vec![("i", Json::Int(i)), ("tag", Json::Str("rec".into()))])
    }

    #[test]
    fn append_then_load_round_trips() {
        let dir = tmp_dir("roundtrip");
        let store = PersistentStore::open(&dir);
        assert!(store.read_only_reason().is_none());
        store.append(Tier::Loops, &[payload(1), payload(2)]);
        store.append(Tier::Loops, &[payload(3)]);
        let loaded = store.load();
        assert_eq!(loaded.loops.len(), 3);
        assert_eq!(loaded.loops[2].get("i").and_then(JVal::as_i64), Some(3));
        assert_eq!(store.stats().recovery_refusals, 0);
        assert_eq!(store.stats().appended_records, 3);
        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_costs_exactly_one_refusal_and_keeps_the_rest() {
        let dir = tmp_dir("torn");
        let store = PersistentStore::open(&dir);
        store.append(Tier::Results, &[payload(1), payload(2)]);
        let path = dir.join("results.log");
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let loaded = store.load();
        assert_eq!(loaded.results.len(), 1, "first record survives");
        let s = store.stats();
        assert_eq!(s.refused_framing, 1, "the torn tail, exactly once");
        assert_eq!(s.recovery_refusals, 1);
        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_is_caught_by_crc_and_skipped() {
        let dir = tmp_dir("flip");
        let store = PersistentStore::open(&dir);
        store.append(Tier::Facts, &[payload(1), payload(2), payload(3)]);
        let path = dir.join("facts.log");
        let mut bytes = fs::read(&path).unwrap();
        // Flip one payload byte of the middle record (past header +
        // first frame; a byte inside the second record's JSON body).
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let loaded = store.load();
        let s = store.stats();
        assert_eq!(
            loaded.facts.len() as u64 + s.recovery_refusals,
            3,
            "every record is either loaded or counted"
        );
        assert!(s.recovery_refusals >= 1);
        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_version_header_refuses_the_whole_file_once() {
        let dir = tmp_dir("version");
        let store = PersistentStore::open(&dir);
        store.append(Tier::Loops, &[payload(1)]);
        let path = dir.join("loops.log");
        let mut bytes = fs::read(&path).unwrap();
        bytes[7] = b'9'; // APST0001 -> APST0009
        fs::write(&path, &bytes).unwrap();
        let loaded = store.load();
        assert!(loaded.loops.is_empty());
        assert_eq!(store.stats().refused_version, 1);
        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_rewrites_atomically_and_resets_seen() {
        let dir = tmp_dir("compact");
        let store = PersistentStore::open(&dir).with_compact_bytes(64);
        for i in 0..10 {
            assert!(store.mark_seen(Tier::Results, i));
            store.append(Tier::Results, &[payload(i as i64)]);
        }
        assert!(store.wants_compaction(Tier::Results));
        store.compact(Tier::Results, &[(7, payload(7))]);
        assert_eq!(store.stats().compactions, 1);
        let loaded = store.load();
        assert_eq!(loaded.results.len(), 1);
        assert!(!store.mark_seen(Tier::Results, 7), "kept key survives");
        assert!(store.mark_seen(Tier::Results, 3), "dropped key is forgotten");
        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn second_opener_degrades_to_read_only_until_first_drops() {
        let dir = tmp_dir("lock");
        let a = PersistentStore::open(&dir);
        assert!(a.read_only_reason().is_none());
        a.append(Tier::Loops, &[payload(1)]);
        let b = PersistentStore::open(&dir);
        let reason = b.read_only_reason().expect("b must be read-only").to_string();
        assert!(reason.contains("locked by live writer"), "{}", reason);
        b.append(Tier::Loops, &[payload(2)]); // silently skipped
        assert_eq!(b.load().loops.len(), 1, "read-only opener still recovers");
        drop(b);
        drop(a);
        let c = PersistentStore::open(&dir);
        assert!(c.read_only_reason().is_none(), "lock released on drop");
        drop(c);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_faults_are_counted_never_raised() {
        let dir = tmp_dir("faults");
        let store = PersistentStore::open_with_faults(
            &dir,
            StoreFaults {
                seed: 7,
                write_fail_1_in: 3,
                short_write_1_in: 4,
                flush_fail_1_in: 5,
                ..StoreFaults::default()
            },
        );
        for i in 0..40 {
            store.append(Tier::Loops, &[payload(i)]);
        }
        let s = store.stats();
        assert!(s.append_errors > 0, "faults fired");
        assert!(s.appended_records > 0, "some appends survived");
        // Whatever the faults tore, recovery is still total.
        let loaded = store.load();
        assert!(loaded.loops.len() as u64 <= s.appended_records + 40);
        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_store_path_degrades_to_read_only() {
        let dir = tmp_dir("unwritable");
        fs::create_dir_all(&dir).unwrap();
        // A *file* where the directory should be: create_dir_all fails
        // regardless of privileges (unlike permission bits under root).
        let path = dir.join("not_a_dir");
        fs::write(&path, b"occupied").unwrap();
        let store = PersistentStore::open(&path);
        let reason = store.read_only_reason().expect("degraded").to_string();
        assert!(reason.contains("cannot create store directory"), "{}", reason);
        store.append(Tier::Facts, &[payload(1)]); // no-op, no panic
        assert_eq!(store.stats().store_bytes, 0);
        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }
}

//! The compiler driver: runs every pass of Figure 2 with wall-clock and
//! symbolic-op accounting, decides per-loop parallelization, and
//! annotates the program for the parallel runtime.

use std::collections::HashSet;
use std::time::Instant;

use apar_analysis::access::{self, AccessKind};
use apar_analysis::alias::AliasInfo;
use apar_analysis::callgraph::CallGraph;
use apar_analysis::constprop;
use apar_analysis::ddtest::{self, DdInput};
use apar_analysis::gsa;
use apar_analysis::induction;
use apar_analysis::inline;
use apar_analysis::loops::LoopForest;
use apar_analysis::privatize;
use apar_analysis::ranges::ScalarState;
use apar_analysis::reduction;
use apar_analysis::summary::Summaries;
use apar_analysis::symx::SymMap;
use apar_minifort::ast::{Block, LoopDirective, StmtKind};
use apar_minifort::{parse_program, resolve, Diag, Program, ResolvedProgram, StmtId};
use apar_symbolic::OpCounter;
use crate::classify::{classify, Classification};
use crate::profile::CompilerProfile;
use crate::report::{CompileReport, PassId};

/// The compiler.
#[derive(Clone, Debug, Default)]
pub struct Compiler {
    pub profile: CompilerProfile,
}

/// Facts recorded about one analyzed loop.
#[derive(Clone, Debug)]
pub struct LoopReport {
    pub unit: String,
    pub stmt: StmtId,
    pub var: String,
    pub depth: usize,
    pub target: Option<String>,
    pub classification: Classification,
    /// True when this loop received a parallel annotation (outermost
    /// parallelizable loops only).
    pub parallelized: bool,
    /// True when the annotation is speculative: the runtime must
    /// validate the parallel execution and fall back to serial on a
    /// conflict (`CompilerProfile::with_runtime_test`).
    pub speculative: bool,
    pub pairs_tested: usize,
    pub ops_spent: u64,
}

/// Everything the compiler produces.
#[derive(Debug)]
pub struct CompileResult {
    /// The transformed, annotated, re-resolved program.
    pub rp: ResolvedProgram,
    pub report: CompileReport,
    pub loops: Vec<LoopReport>,
}

impl CompileResult {
    /// Reports for `!$TARGET` loops only.
    pub fn target_loops(&self) -> impl Iterator<Item = &LoopReport> {
        self.loops.iter().filter(|l| l.target.is_some())
    }

    /// Histogram of target-loop classifications (Figure 5 bars).
    pub fn target_histogram(&self) -> Vec<(Classification, usize)> {
        let mut counts: Vec<(Classification, usize)> = Vec::new();
        for l in self.target_loops() {
            match counts.iter_mut().find(|(c, _)| *c == l.classification) {
                Some((_, n)) => *n += 1,
                None => counts.push((l.classification, 1)),
            }
        }
        counts
    }
}

impl Compiler {
    pub fn new(profile: CompilerProfile) -> Self {
        Compiler { profile }
    }

    /// Compiles source text.
    pub fn compile_source(&self, app: &str, src: &str) -> Result<CompileResult, Diag> {
        let prog = parse_program(src).map_err(Diag::Parse)?;
        self.compile(app, prog)
    }

    /// Compiles a parsed program.
    pub fn compile(&self, app: &str, prog: Program) -> Result<CompileResult, Diag> {
        let caps = self.profile.caps;
        let mut report = CompileReport {
            app: app.to_string(),
            profile: self.profile.name.clone(),
            ..Default::default()
        };

        // ---- Frontend ("others") ----------------------------------------
        let t = Instant::now();
        let mut rp = resolve(prog).map_err(Diag::Resolve)?;
        report.statements = rp.program.executable_statements();
        report.units = rp.program.units.len();
        report.charge(PassId::Others, t.elapsed(), rp.program.stmt_count as u64);

        // ---- Induction variable substitution ------------------------------
        let t = Instant::now();
        let mut prog2 = rp.program.clone();
        let mut next_id = prog2.stmt_count;
        let mut substituted = 0u64;
        for u in &mut prog2.units {
            if u.lang == apar_minifort::Lang::C && !caps.multilingual {
                continue;
            }
            let r = induction::run_on_unit(u, &rp.tables[&u.name], &mut next_id);
            substituted += r.substituted.len() as u64;
        }
        prog2.stmt_count = next_id;
        rp = resolve(prog2).map_err(Diag::Resolve)?;
        report.charge(
            PassId::InductionSubstitution,
            t.elapsed(),
            rp.program.stmt_count as u64 + substituted * 32,
        );

        // ---- GSA translation ----------------------------------------------
        let t = Instant::now();
        let mut gsa_ops = 0u64;
        for u in &rp.program.units {
            if u.lang == apar_minifort::Lang::C && !caps.multilingual {
                continue;
            }
            let stats = gsa::translate_unit(&rp, u);
            gsa_ops += (stats.gated_defs() as u64) * 8
                + stats.cfg_nodes as u64
                + (stats.option_branches as u64) * 16;
        }
        report.charge(PassId::GsaTranslation, t.elapsed(), gsa_ops);

        // ---- Structural substrate ("others") -------------------------------
        let t = Instant::now();
        let cg = CallGraph::build(&rp);
        let forest = LoopForest::build(&rp);
        let mut sym = SymMap::new();
        let summaries = Summaries::build(&rp, &cg, &mut sym, caps);
        let alias = AliasInfo::build(&rp, &cg, caps);
        report.loops = forest.loops.len();
        report.target_loops = forest.targets().count();
        report.charge(PassId::Others, t.elapsed(), forest.loops.len() as u64);

        // ---- Interprocedural constant propagation ---------------------------
        let t = Instant::now();
        let cp = constprop::propagate(&rp, &cg, &mut sym, caps, &summaries);
        let cp_ops = rp.program.stmt_count as u64 * 2
            + (cp.formal_constants as u64 + cp.common_facts as u64) * 16;
        report.charge(PassId::InterproceduralConstProp, t.elapsed(), cp_ops);

        // ---- Per-loop analysis ----------------------------------------------
        let mut loops_out: Vec<LoopReport> = Vec::new();
        let mut parallel_loops: HashSet<StmtId> = HashSet::new();
        for info in &forest.loops {
            let unit_name = info.id.unit.clone();
            let Some(unit) = rp.unit(&unit_name) else {
                continue;
            };
            if unit.lang == apar_minifort::Lang::C && !caps.multilingual {
                continue;
            }
            let loop_ops = OpCounter::with_budget(self.profile.loop_op_budget);

            // Choose the program to analyze: inline calls if any.
            let has_calls = !info.calls.is_empty();
            let (arp, inline_time, spliced) = if has_calls {
                let t = Instant::now();
                let mut scratch = rp.program.clone();
                let (_n, _fails) = inline::inline_calls_in_loop(
                    &mut scratch,
                    &rp,
                    &cg,
                    caps,
                    &unit_name,
                    info.id.stmt,
                    self.profile.inline_depth,
                    self.profile.inline_stmt_budget,
                );
                match resolve(scratch) {
                    Ok(srp) => {
                        let spliced = srp.program.stmt_count - rp.program.stmt_count;
                        (Some(srp), t.elapsed(), spliced as u64)
                    }
                    Err(_) => (None, t.elapsed(), 0),
                }
            } else {
                (None, std::time::Duration::ZERO, 0)
            };
            if has_calls {
                report.charge(PassId::InlineExpansion, inline_time, spliced * 4);
            }
            let arp_ref: &ResolvedProgram = arp.as_ref().unwrap_or(&rp);

            // Ranges for the analyzed program (recomputed for the unit
            // when inlining changed it).
            let state: ScalarState = if arp.is_some() {
                let seed = cp
                    .seeds
                    .get(&unit_name)
                    .cloned()
                    .unwrap_or_default();
                let summaries2 = Summaries::build(
                    arp_ref,
                    &CallGraph::build(arp_ref),
                    &mut sym,
                    caps,
                );
                let ur = apar_analysis::ranges::analyze_unit(
                    arp_ref, &unit_name, &mut sym, caps, &summaries2, &seed,
                );
                ur.at_loop.get(&info.id.stmt).cloned().unwrap_or_default()
            } else {
                cp.ranges
                    .get(&unit_name)
                    .and_then(|ur| ur.at_loop.get(&info.id.stmt))
                    .cloned()
                    .unwrap_or_default()
            };

            // Locate the loop body in the analyzed program. A unit can
            // legitimately disappear (fully inlined away); its loops
            // are simply not candidates any more.
            let Some(aunit) = arp_ref.unit(&unit_name) else {
                continue;
            };
            let Some((var, lo, hi, step, body)) = find_do(aunit, info.id.stmt) else {
                continue;
            };

            // Dependence test.
            let t = Instant::now();
            let la = access::collect(arp_ref, &unit_name, &body, &mut sym, &state);
            let alias2;
            let alias_ref = if arp.is_some() {
                alias2 = AliasInfo::build(arp_ref, &CallGraph::build(arp_ref), caps);
                &alias2
            } else {
                &alias
            };
            let summaries_dd;
            let summaries_ref = if arp.is_some() {
                summaries_dd =
                    Summaries::build(arp_ref, &CallGraph::build(arp_ref), &mut sym, caps);
                &summaries_dd
            } else {
                &summaries
            };
            let input = DdInput {
                rp: arp_ref,
                unit: &unit_name,
                loop_var: &var,
                lo: &lo,
                hi: &hi,
                step: step.as_ref(),
                state: &state,
                la: &la,
            };
            let dd = ddtest::test_loop(&input, &mut sym, caps, alias_ref, summaries_ref, &loop_ops);
            let dd_ops = loop_ops.spent();
            report.charge(PassId::DataDependence, t.elapsed(), dd_ops);

            // Privatization.
            let t = Instant::now();
            let priv_res = privatize::analyze(
                arp_ref,
                aunit,
                info.id.stmt,
                &body,
                &var,
                &la,
                &state,
                &mut sym,
                caps,
                &loop_ops,
            );
            report.charge(
                PassId::Privatization,
                t.elapsed(),
                loop_ops.spent() - dd_ops,
            );

            // Reduction recognition.
            let t = Instant::now();
            let table = arp_ref.table(&unit_name);
            let reds = reduction::find_reductions(&body, &|n| table.is_array(n));
            report.charge(PassId::Reduction, t.elapsed(), la.accesses.len() as u64);

            // Decision.
            let red_names: HashSet<&str> = reds.iter().map(|r| r.var.as_str()).collect();
            let leftover = priv_res
                .failed_scalars
                .iter()
                .filter(|s| !red_names.contains(s.as_str()))
                .count();
            let private_arrays: HashSet<&str> =
                priv_res.private_arrays.iter().map(|s| s.as_str()).collect();
            let classification = classify(&dd, la.has_io || la.has_escape, leftover, &|d| {
                private_arrays.contains(d.array.as_str())
            });
            let parallel = classification == Classification::Autoparallelized;

            // Annotate the outermost parallel loops on the ORIGINAL AST.
            let mut annotated = false;
            let mut speculative = false;
            // Speculative candidates: hindrances a runtime dependence
            // test can discharge (the array conflict is data-dependent),
            // with no I/O or escaping effects to roll back and no
            // unprivatizable scalars (those would conflict on every run).
            let spec_candidate = self.profile.runtime_test
                && matches!(
                    classification,
                    Classification::Indirection
                        | Classification::Rangeless
                        | Classification::SymbolAnalysis
                )
                && !la.has_io
                && !la.has_escape
                && leftover == 0;
            if (parallel || spec_candidate)
                && !has_parallel_ancestor(&forest, info, &parallel_loops)
            {
                let orig_table = rp.table(&unit_name);
                // Write summary for speculative regions: the cells a
                // rollback must restore. Only exact summaries are
                // emitted — a body with calls may write through its
                // callees, and an analysis access list can reference
                // transform-introduced temporaries absent from the
                // original program; either case leaves `writes` unset
                // so the runtime falls back to a full checkpoint.
                let writes = if !parallel && la.calls.is_empty() {
                    let mut w: Vec<String> = la
                        .accesses
                        .iter()
                        .filter(|a| a.kind == AccessKind::Write)
                        .map(|a| a.array.clone())
                        .chain(la.scalar_writes.iter().map(|(n, _, _)| n.clone()))
                        .collect();
                    w.sort_unstable();
                    w.dedup();
                    if w.iter().all(|n| orig_table.get(n).is_some()) {
                        Some(w)
                    } else {
                        None
                    }
                } else {
                    None
                };
                let directive = LoopDirective {
                    private: priv_res
                        .private_scalars
                        .iter()
                        .chain(priv_res.private_arrays.iter())
                        .filter(|n| orig_table.get(n).is_some())
                        .cloned()
                        .collect(),
                    reductions: reds.iter().map(|r| (r.op, r.var.clone())).collect(),
                    speculative: !parallel,
                    writes,
                };
                speculative = directive.speculative;
                annotated = annotate_loop(&mut rp, &unit_name, info.id.stmt, directive);
                if annotated {
                    parallel_loops.insert(info.id.stmt);
                } else {
                    speculative = false;
                }
            }

            loops_out.push(LoopReport {
                unit: unit_name,
                stmt: info.id.stmt,
                var,
                depth: info.depth,
                target: info.target.clone(),
                classification,
                parallelized: annotated && !speculative,
                speculative,
                pairs_tested: dd.pairs_tested,
                ops_spent: loop_ops.spent(),
            });
        }

        Ok(CompileResult {
            rp,
            report,
            loops: loops_out,
        })
    }
}

/// Finds a DO loop by id and clones its header and body.
fn find_do(
    unit: &apar_minifort::Unit,
    id: StmtId,
) -> Option<(
    String,
    apar_minifort::ast::Expr,
    apar_minifort::ast::Expr,
    Option<apar_minifort::ast::Expr>,
    Block,
)> {
    let mut found = None;
    unit.body.walk_stmts(&mut |s| {
        if s.id == id && found.is_none() {
            if let StmtKind::Do {
                var,
                lo,
                hi,
                step,
                body,
                ..
            } = &s.kind
            {
                found = Some((
                    var.clone(),
                    lo.clone(),
                    hi.clone(),
                    step.clone(),
                    body.clone(),
                ));
            }
        }
    });
    found
}

fn has_parallel_ancestor(
    forest: &LoopForest,
    info: &apar_analysis::loops::LoopInfo,
    parallel: &HashSet<StmtId>,
) -> bool {
    let mut cur = info.parent;
    while let Some(p) = cur {
        if parallel.contains(&p) {
            return true;
        }
        cur = forest
            .loops
            .iter()
            .find(|l| l.id.stmt == p && l.id.unit == info.id.unit)
            .and_then(|l| l.parent);
    }
    false
}

/// Writes the `auto_par` annotation onto a DO statement.
fn annotate_loop(
    rp: &mut ResolvedProgram,
    unit: &str,
    id: StmtId,
    directive: LoopDirective,
) -> bool {
    let Some(u) = rp.program.unit_mut(unit) else {
        return false;
    };
    let mut done = false;
    u.body.walk_stmts_mut(&mut |s| {
        if s.id == id && !done {
            if let StmtKind::Do { auto_par, .. } = &mut s.kind {
                *auto_par = Some(directive.clone());
                done = true;
            }
        }
    });
    done
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(src: &str, profile: CompilerProfile) -> CompileResult {
        Compiler::new(profile)
            .compile_source("test", src)
            .expect("compile")
    }

    #[test]
    fn simple_loop_is_parallelized_and_annotated() {
        let r = compile(
            "PROGRAM P\nREAL A(100), B(100)\nDO I = 1, 100\nA(I) = B(I) + 1.0\nENDDO\nEND\n",
            CompilerProfile::polaris2008(),
        );
        assert_eq!(r.loops.len(), 1);
        assert_eq!(r.loops[0].classification, Classification::Autoparallelized);
        assert!(r.loops[0].parallelized);
        // The annotation landed in the AST.
        let mut annotated = 0;
        r.rp.main_unit().unwrap().body.walk_stmts(&mut |s| {
            if let StmtKind::Do { auto_par: Some(_), .. } = &s.kind {
                annotated += 1;
            }
        });
        assert_eq!(annotated, 1);
    }

    #[test]
    fn nested_parallel_gets_outer_annotation_only() {
        let r = compile(
            "PROGRAM P\nREAL A(100, 100)\nDO I = 1, 100\nDO J = 1, 100\nA(J, I) = 1.0\nENDDO\nENDDO\nEND\n",
            CompilerProfile::polaris2008(),
        );
        assert_eq!(r.loops.len(), 2);
        assert!(r.loops.iter().all(|l| l.classification == Classification::Autoparallelized));
        let outer = r.loops.iter().find(|l| l.depth == 0).unwrap();
        let inner = r.loops.iter().find(|l| l.depth == 1).unwrap();
        assert!(outer.parallelized);
        assert!(!inner.parallelized, "inner loop must not be annotated");
    }

    #[test]
    fn reduction_loop_parallelized_with_clause() {
        let r = compile(
            "PROGRAM P\nREAL A(100)\nS = 0.0\nDO I = 1, 100\nS = S + A(I)\nENDDO\nWRITE(*,*) S\nEND\n",
            CompilerProfile::polaris2008(),
        );
        assert_eq!(r.loops[0].classification, Classification::Autoparallelized);
        let mut dir = None;
        r.rp.main_unit().unwrap().body.walk_stmts(&mut |s| {
            if let StmtKind::Do { auto_par: Some(d), .. } = &s.kind {
                dir = Some(d.clone());
            }
        });
        let d = dir.expect("annotated");
        assert_eq!(d.reductions.len(), 1);
        assert_eq!(d.reductions[0].1, "S");
    }

    #[test]
    fn private_scalar_listed_in_directive() {
        let r = compile(
            "PROGRAM P\nREAL A(100)\nDO I = 1, 100\nT = A(I) * 2.0\nA(I) = T\nENDDO\nEND\n",
            CompilerProfile::polaris2008(),
        );
        assert!(r.loops[0].parallelized);
        let mut dir = None;
        r.rp.main_unit().unwrap().body.walk_stmts(&mut |s| {
            if let StmtKind::Do { auto_par: Some(d), .. } = &s.kind {
                dir = Some(d.clone());
            }
        });
        assert!(dir.expect("directive").private.contains(&"T".to_string()));
    }

    #[test]
    fn induction_variable_loop_parallelizes() {
        let r = compile(
            "PROGRAM P\nREAL A(200)\nK = 0\nDO I = 1, 100\nK = K + 2\nA(K) = 1.0\nENDDO\nEND\n",
            CompilerProfile::polaris2008(),
        );
        assert_eq!(
            r.loops[0].classification,
            Classification::Autoparallelized,
            "induction substitution should enable parallelization"
        );
    }

    #[test]
    fn call_inlined_then_parallelized() {
        let r = compile(
            "PROGRAM P\nREAL A(100)\nDO I = 1, 100\nCALL SET(A, I)\nENDDO\nEND\nSUBROUTINE SET(X, K)\nREAL X(*)\nX(K) = K * 2.0\nEND\n",
            CompilerProfile::polaris2008(),
        );
        let main_loop = r.loops.iter().find(|l| l.unit == "P").unwrap();
        assert_eq!(main_loop.classification, Classification::Autoparallelized);
        assert!(main_loop.parallelized);
    }

    #[test]
    fn io_loop_is_control() {
        let r = compile(
            "PROGRAM P\nDO I = 1, 10\nWRITE(*,*) I\nENDDO\nEND\n",
            CompilerProfile::polaris2008(),
        );
        assert_eq!(r.loops[0].classification, Classification::Control);
        assert!(!r.loops[0].parallelized);
    }

    #[test]
    fn target_histogram_counts() {
        let r = compile(
            "PROGRAM P\nREAL A(100)\nINTEGER IA(100)\n!$TARGET GOOD\nDO I = 1, 100\nA(I) = 1.0\nENDDO\n!$TARGET GATHER\nDO I = 1, 100\nA(IA(I)) = A(IA(I)) + 1.0\nENDDO\nEND\n",
            CompilerProfile::polaris2008(),
        );
        let h = r.target_histogram();
        assert!(h.contains(&(Classification::Autoparallelized, 1)));
        assert!(h.contains(&(Classification::Indirection, 1)));
    }

    #[test]
    fn pass_costs_recorded() {
        let r = compile(
            "PROGRAM P\nREAL A(100)\nDO I = 1, 100\nA(I) = 1.0\nENDDO\nEND\n",
            CompilerProfile::polaris2008(),
        );
        assert!(r.report.total_ops() > 0);
        assert!(r.report.per_pass.contains_key(&PassId::DataDependence));
        assert!(r.report.statements > 0);
    }

    #[test]
    fn true_dependence_stays_serial() {
        let r = compile(
            "PROGRAM P\nREAL A(100)\nDO I = 2, 100\nA(I) = A(I - 1)\nENDDO\nEND\n",
            CompilerProfile::polaris2008(),
        );
        assert_eq!(r.loops[0].classification, Classification::RealDependence);
        assert!(!r.loops[0].parallelized);
    }
}

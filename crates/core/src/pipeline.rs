//! The compiler driver: runs every pass of Figure 2 with wall-clock and
//! symbolic-op accounting, decides per-loop parallelization, and
//! annotates the program for the parallel runtime.

use std::cell::Cell;
use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::cancel::CancelToken;
use crate::classify::{classify, Classification};
use crate::jsonio::{JVal, Json};
use crate::profile::CompilerProfile;
use crate::report::{CompileReport, DegradeTier, PassId, SkipReason, SkippedLoop};
use apar_analysis::access::{self, AccessKind};
use apar_analysis::alias::AliasInfo;
use apar_analysis::cache::{AnalysisCache, ProgramFacts, SharedFactsStore};
use apar_analysis::callgraph::CallGraph;
use apar_analysis::constprop::{self, ConstProp};
use apar_analysis::ddtest::{self, DdInput};
use apar_analysis::gsa;
use apar_analysis::incr;
use apar_analysis::induction;
use apar_analysis::inline;
use apar_analysis::loops::{find_loop, imbalanced_body, LoopForest, LoopInfo};
use apar_analysis::privatize;
use apar_analysis::ranges::ScalarState;
use apar_analysis::reduction;
use apar_analysis::summary::Summaries;
use apar_analysis::symx::SymMap;
use apar_minifort::ast::{Block, LoopDirective, RedOp, Schedule, StmtKind};
use apar_minifort::{
    frontend_recovering, parse_program, parse_program_recovering, resolve, resolve_recovering,
    Diag, Program, ResolvedProgram, StmtId,
};
use apar_symbolic::OpCounter;

/// The compiler.
#[derive(Clone, Debug, Default)]
pub struct Compiler {
    pub profile: CompilerProfile,
    /// Cross-compile analysis-facts store (the service layer's shared
    /// cache). `None` — the default — keeps memoization per-compile.
    /// Attaching a store never changes any report: entries are keyed by
    /// the full build identity, so a compile only ever adopts facts it
    /// would have rebuilt bit-for-bit.
    pub shared_facts: Option<Arc<SharedFactsStore>>,
    /// Cooperative cancellation for this compile: checked at pass
    /// checkpoints (the watchdog's own trip sites). Expiry degrades the
    /// compile to a structured partial result — completed loops keep
    /// their reports, the rest land in the skip ledger as
    /// `DeadlineExpired`. `None` (the default) never cancels.
    pub cancel: Option<CancelToken>,
    /// How much of the pipeline to run (the service's overload tiers).
    /// `Full` — the default — is the normal compiler.
    pub degrade: DegradeTier,
}

/// Facts recorded about one analyzed loop.
#[derive(Clone, Debug)]
pub struct LoopReport {
    pub unit: String,
    pub stmt: StmtId,
    pub var: String,
    pub depth: usize,
    pub target: Option<String>,
    pub classification: Classification,
    /// True when this loop received a parallel annotation (outermost
    /// parallelizable loops only).
    pub parallelized: bool,
    /// True when the annotation is speculative: the runtime must
    /// validate the parallel execution and fall back to serial on a
    /// conflict (`CompilerProfile::with_runtime_test`).
    pub speculative: bool,
    pub pairs_tested: usize,
    pub ops_spent: u64,
    /// True when the op-budget watchdog (or the dependence test's own
    /// budget) abandoned this loop as `Complexity`.
    pub budget_tripped: bool,
}

/// Everything the compiler produces.
#[derive(Debug)]
pub struct CompileResult {
    /// The transformed, annotated, re-resolved program.
    pub rp: ResolvedProgram,
    pub report: CompileReport,
    pub loops: Vec<LoopReport>,
}

impl CompileResult {
    /// Reports for `!$TARGET` loops only.
    pub fn target_loops(&self) -> impl Iterator<Item = &LoopReport> {
        self.loops.iter().filter(|l| l.target.is_some())
    }

    /// Loops the op-budget watchdog abandoned as `Complexity`.
    pub fn budget_tripped_loops(&self) -> usize {
        self.loops.iter().filter(|l| l.budget_tripped).count()
    }

    /// Histogram of target-loop classifications (Figure 5 bars).
    pub fn target_histogram(&self) -> Vec<(Classification, usize)> {
        let mut counts: Vec<(Classification, usize)> = Vec::new();
        for l in self.target_loops() {
            match counts.iter_mut().find(|(c, _)| *c == l.classification) {
                Some((_, n)) => *n += 1,
                None => counts.push((l.classification, 1)),
            }
        }
        counts
    }

    /// Everything in a compile result that must not depend on the
    /// thread count, worker pool, or any cache state: per-pass ops, the
    /// per-loop records, the Figure 5 histogram, the skip ledger, and
    /// the containment counters. Wall seconds are deliberately
    /// excluded. Two results with equal signatures are bit-identical in
    /// every published dimension — the identity verdict of the compile
    /// benchmark, the fuzzer, and the service tests.
    pub fn report_signature(&self) -> String {
        let mut s = String::new();
        for p in PassId::ALL {
            let ops = self.report.per_pass.get(&p).map_or(0, |c| c.ops);
            s.push_str(&format!("{:?}={};", p, ops));
        }
        for l in &self.loops {
            s.push_str(&format!(
                "{}:{:?}:{:?}:{}:{}:{}:{};",
                l.unit,
                l.stmt,
                l.classification,
                l.parallelized,
                l.speculative,
                l.pairs_tested,
                l.ops_spent
            ));
        }
        for (c, n) in self.target_histogram() {
            s.push_str(&format!("{:?}x{};", c, n));
        }
        for sk in &self.report.skipped {
            s.push_str(&format!("skip:{}:{:?}:{:?};", sk.unit, sk.stmt, sk.reason));
        }
        // Containment counters: a panic or budget trip that fires in one
        // configuration but not another is a determinism bug the
        // identity verdict must catch.
        s.push_str(&format!(
            "panicked={};tripped={};diags={};dropped={};",
            self.report.panicked_loops(),
            self.budget_tripped_loops(),
            self.report.diags.len(),
            self.report.dropped_units.len()
        ));
        // Resilience markers: a degraded or expired compile must never
        // pass for a full one in an identity comparison.
        s.push_str(&format!(
            "tier={:?};expired={};",
            self.report.degrade, self.report.deadline_expired
        ));
        s
    }
}

impl Compiler {
    pub fn new(profile: CompilerProfile) -> Self {
        Compiler {
            profile,
            ..Compiler::default()
        }
    }

    /// This compiler with a cross-compile facts store attached: per-loop
    /// interprocedural facts built here become adoptable by later
    /// compiles sharing the store (and vice versa). Reports are
    /// bit-identical with or without it.
    pub fn with_shared_facts(mut self, store: Arc<SharedFactsStore>) -> Self {
        self.shared_facts = Some(store);
        self
    }

    /// This compiler with a cancellation token: the compile checks it
    /// cooperatively at pass checkpoints and degrades to a structured
    /// `DeadlineExpired` partial result once it trips.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// This compiler pinned to a degraded tier (see [`DegradeTier`]).
    pub fn with_degrade(mut self, tier: DegradeTier) -> Self {
        self.degrade = tier;
        self
    }

    fn expired(&self) -> bool {
        self.cancel.as_ref().is_some_and(|c| c.is_cancelled())
    }

    /// Compiles source text.
    pub fn compile_source(&self, app: &str, src: &str) -> Result<CompileResult, Diag> {
        let prog = parse_program(src).map_err(Diag::Parse)?;
        self.compile(app, prog)
    }

    /// Compiles source text with front-end recovery: garbled statements
    /// and unresolvable units degrade to diagnostics on the report
    /// instead of aborting the compile. Total — any byte sequence yields
    /// a `CompileResult` (possibly over an empty program).
    pub fn compile_source_recovering(&self, app: &str, src: &str) -> CompileResult {
        let (mut prog, parse_errs) = parse_program_recovering(src);
        // Probe-resolve a copy to learn which units the resolver must
        // drop, then filter the *raw* program so the main pipeline (which
        // re-resolves after every rewrite) never sees them.
        let (_, resolve_errs) = resolve_recovering(prog.clone());
        let bad: HashSet<&str> = resolve_errs.iter().map(|e| e.unit.as_str()).collect();
        prog.units.retain(|u| !bad.contains(u.name.as_str()));
        let mut diags: Vec<Diag> = parse_errs.into_iter().map(Diag::Parse).collect();
        let mut dropped: Vec<String> = resolve_errs.iter().map(|e| e.unit.clone()).collect();
        diags.extend(resolve_errs.into_iter().map(Diag::Resolve));

        let mut result = match self.compile(app, prog) {
            Ok(r) => r,
            Err(d) => {
                // A mid-pipeline rewrite re-resolved into an error the
                // probe didn't predict; degrade to an empty compile
                // rather than panic or abort.
                diags.push(d);
                dropped.push("<all>".to_string());
                let empty = Program {
                    units: Vec::new(),
                    stmt_count: 0,
                };
                match self.compile(app, empty) {
                    Ok(r) => r,
                    Err(d2) => {
                        // Even the empty program failed — keep the
                        // totality contract with a bare structured
                        // result instead of panicking.
                        diags.push(d2);
                        CompileResult {
                            rp: ResolvedProgram {
                                program: Program {
                                    units: Vec::new(),
                                    stmt_count: 0,
                                },
                                tables: HashMap::new(),
                                common_sizes: HashMap::new(),
                            },
                            report: CompileReport {
                                app: app.to_string(),
                                profile: self.profile.name.clone(),
                                ..Default::default()
                            },
                            loops: Vec::new(),
                        }
                    }
                }
            }
        };
        result.report.diags = diags;
        result.report.dropped_units = dropped;
        result
    }

    /// Compiles a parsed program.
    pub fn compile(&self, app: &str, prog: Program) -> Result<CompileResult, Diag> {
        let caps = self.profile.caps;
        let mut report = CompileReport {
            app: app.to_string(),
            profile: self.profile.name.clone(),
            ..Default::default()
        };
        if self.degrade != DegradeTier::Full {
            report.degrade = Some(self.degrade);
        }

        // ---- Frontend ("others") ----------------------------------------
        let t = Instant::now();
        let mut rp = resolve(prog).map_err(Diag::Resolve)?;
        report.statements = rp.program.executable_statements();
        report.units = rp.program.units.len();
        report.charge(PassId::Others, t.elapsed(), rp.program.stmt_count as u64);

        // Parse-only tier stops here by design; an expired deadline
        // stops at the first post-frontend checkpoint. Either way the
        // result is structured: every discovered loop is ledgered.
        if self.degrade == DegradeTier::ParseOnly {
            return Ok(skip_all(
                rp,
                report,
                SkipReason::Degraded {
                    tier: DegradeTier::ParseOnly,
                },
            ));
        }
        if self.expired() {
            return Ok(skip_all(rp, report, SkipReason::DeadlineExpired));
        }

        // ---- Induction variable substitution ------------------------------
        let t = Instant::now();
        let mut prog2 = rp.program.clone();
        let mut next_id = prog2.stmt_count;
        let mut substituted = 0u64;
        for u in &mut prog2.units {
            if u.lang == apar_minifort::Lang::C && !caps.multilingual {
                continue;
            }
            let r = induction::run_on_unit(u, &rp.tables[&u.name], &mut next_id);
            substituted += r.substituted.len() as u64;
        }
        prog2.stmt_count = next_id;
        rp = resolve(prog2).map_err(Diag::Resolve)?;
        report.charge(
            PassId::InductionSubstitution,
            t.elapsed(),
            rp.program.stmt_count as u64 + substituted * 32,
        );
        if self.expired() {
            return Ok(skip_all(rp, report, SkipReason::DeadlineExpired));
        }

        // ---- GSA translation ----------------------------------------------
        let t = Instant::now();
        let mut gsa_ops = 0u64;
        for u in &rp.program.units {
            if u.lang == apar_minifort::Lang::C && !caps.multilingual {
                continue;
            }
            let stats = gsa::translate_unit(&rp, u);
            gsa_ops += (stats.gated_defs() as u64) * 8
                + stats.cfg_nodes as u64
                + (stats.option_branches as u64) * 16;
        }
        report.charge(PassId::GsaTranslation, t.elapsed(), gsa_ops);
        if self.expired() {
            return Ok(skip_all(rp, report, SkipReason::DeadlineExpired));
        }

        // ---- Structural substrate ("others") -------------------------------
        let t = Instant::now();
        let cg = CallGraph::build(&rp);
        let forest = LoopForest::build(&rp);
        let mut sym = SymMap::new();
        // The prelude counter never trips (whole-program passes run
        // once); its total is recorded on the seeded facts for
        // reporting only — per-loop watchdogs never re-bill it, so a
        // loop's op accounting stays a pure function of its own
        // content.
        let prelude_ops = OpCounter::unlimited();
        let summaries = Summaries::build(&rp, &cg, &mut sym, caps, &prelude_ops);
        let alias = AliasInfo::build(&rp, &cg, caps, &prelude_ops);
        report.loops = forest.loops.len();
        report.target_loops = forest.targets().count();
        report.charge(PassId::Others, t.elapsed(), forest.loops.len() as u64);
        if self.expired() {
            return Ok(skip_all(rp, report, SkipReason::DeadlineExpired));
        }

        // ---- Interprocedural constant propagation ---------------------------
        let t = Instant::now();
        let cp = constprop::propagate(&rp, &cg, &mut sym, caps, &summaries);
        let cp_ops = rp.program.stmt_count as u64 * 2
            + (cp.formal_constants as u64 + cp.common_facts as u64) * 16;
        report.charge(PassId::InterproceduralConstProp, t.elapsed(), cp_ops);
        if self.expired() {
            return Ok(skip_all(rp, report, SkipReason::DeadlineExpired));
        }

        // ---- Incremental recompilation keys ---------------------------------
        //
        // With a shared store attached, each loop gets a content key
        // covering everything its analysis can observe (its unit's
        // text, the post-inline closure with summaries and caller
        // edges, alias facts, propagated scalar state, and the
        // analysis knobs — see `apar_analysis::incr`). A prior
        // compile's outcome stored under the same key spliced in below
        // is bit-identical to re-analysis by construction. Disabled
        // under fault injection (a splice would skip the injected
        // panic) and on degraded tiers (their outcomes are not full
        // analyses).
        let splice_keys: Option<Vec<u64>> = if self.shared_facts.is_some()
            && self.degrade == DegradeTier::Full
            && self.profile.fault.is_none()
        {
            let knobs = incr::Knobs {
                loop_op_budget: self.profile.loop_op_budget,
                inline_depth: self.profile.inline_depth,
                inline_stmt_budget: self.profile.inline_stmt_budget,
                runtime_test: self.profile.runtime_test,
            };
            Some(incr::loop_keys(
                &rp, &forest, &cg, &summaries, &alias, &cp, &sym, &caps, &knobs,
            ))
        } else {
            None
        };

        // ---- Per-loop analysis (fan-out) ------------------------------------
        //
        // Each loop's analysis is a pure function of the pristine
        // resolved program plus the prelude facts, so the loops fan out
        // over `profile.threads` scoped workers sharing one
        // content-keyed [`AnalysisCache`]. Workers never observe the
        // annotations other loops produce; ordering-sensitive work
        // (outermost-parallel ancestry, annotation, charge accounting,
        // interner growth) happens in the sequential merge below, in
        // loop order, which keeps reports bit-identical regardless of
        // thread count.
        let mut cache = AnalysisCache::new(caps, sym.clone())
            .with_build_budget(self.profile.loop_op_budget.saturating_mul(32));
        if let Some(store) = &self.shared_facts {
            cache = cache.with_shared(Arc::clone(store));
        }
        let cache = cache;
        let base = cache.seed(
            &rp,
            ProgramFacts {
                cg,
                summaries,
                alias,
                sym: sym.clone(),
                build_ops: prelude_ops.spent(),
                budget_tripped: false,
                quarantined: false,
            },
        );
        // ---- Incremental splice (before the fan-out) ------------------------
        // A retrieved record must re-verify structurally against the
        // live loop; a mismatch (hash collision or stale structure) is
        // a counted refusal and the loop re-analyzes cold. Splices are
        // resolved on this thread, in loop order, so hit/refusal
        // accounting is deterministic.
        let n = forest.loops.len();
        let mut slots: Vec<Option<LoopOutcome>> = Vec::new();
        slots.resize_with(n, || None);
        let mut was_spliced = vec![false; n];
        if let (Some(keys), Some(store)) = (&splice_keys, &self.shared_facts) {
            for (i, info) in forest.loops.iter().enumerate() {
                let Some(rec) = store.loop_get(keys[i]) else {
                    continue;
                };
                match rec.downcast::<SplicedLoop>() {
                    Ok(s) if s.matches(info) => {
                        store.note_loop_hit();
                        slots[i] = Some(s.to_outcome());
                        was_spliced[i] = true;
                    }
                    _ => store.note_loop_refusal(),
                }
            }
        }

        let outcomes: Vec<LoopOutcome> = {
            let ctx = LoopCtx {
                profile: &self.profile,
                rp: &rp,
                base: &base,
                cp: &cp,
                cache: &cache,
                cancel: self.cancel.as_ref(),
                facts_only: self.degrade == DegradeTier::FactsOnly,
            };
            let work: Vec<usize> = (0..n).filter(|&i| slots[i].is_none()).collect();
            let threads = self.profile.threads.max(1).min(work.len().max(1));
            if threads <= 1 {
                for &i in &work {
                    slots[i] = Some(analyze_loop(&ctx, &forest.loops[i]));
                }
            } else {
                let next = AtomicUsize::new(0);
                let shards: Vec<Vec<(usize, LoopOutcome)>> = std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..threads)
                        .map(|_| {
                            let ctx = &ctx;
                            let next = &next;
                            let work = &work;
                            let loops = &forest.loops;
                            scope.spawn(move || {
                                let mut mine = Vec::new();
                                loop {
                                    let w = next.fetch_add(1, Ordering::Relaxed);
                                    if w >= work.len() {
                                        break;
                                    }
                                    let i = work[w];
                                    mine.push((i, analyze_loop(ctx, &loops[i])));
                                }
                                mine
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                        .collect()
                });
                for (i, o) in shards.into_iter().flatten() {
                    slots[i] = Some(o);
                }
            }
            slots
                .into_iter()
                .map(|o| o.unwrap_or_else(missing_outcome))
                .collect()
        };

        // ---- Deterministic merge (loop order) -------------------------------
        // Loops the analysis proved parallel, for COLLAPSE computation:
        // a perfect-nest chain counts only members of this set.
        let auto_ok: HashSet<StmtId> = forest
            .loops
            .iter()
            .zip(&outcomes)
            .filter(|(_, o)| {
                matches!(&o.result, Ok(a) if a.classification == Classification::Autoparallelized)
            })
            .map(|(info, _)| info.id.stmt)
            .collect();
        let mut loops_out: Vec<LoopReport> = Vec::new();
        let mut parallel_loops: HashSet<StmtId> = HashSet::new();
        for (i, (info, outcome)) in forest.loops.iter().zip(outcomes).enumerate() {
            // Publish fresh, cacheable outcomes under their content key
            // for later compiles to splice. Nothing content-coupled to
            // the rest of the program (facts-build budget trips) or
            // non-analyses (panics, deadline expiries) is ever stored.
            if let (Some(keys), Some(store)) = (&splice_keys, &self.shared_facts) {
                if !was_spliced[i] && outcome.cacheable {
                    if let Ok(a) = &outcome.result {
                        store.loop_put(
                            keys[i],
                            Arc::new(SplicedLoop::capture(info, a, &outcome.charges)),
                        );
                    }
                }
            }
            for (pass, wall, ops) in outcome.charges {
                report.charge(pass, wall, ops);
            }
            // Canonical interner merge: absorbing worker forks in loop
            // order reproduces the ids a sequential run hands out.
            if let Some(wsym) = &outcome.sym {
                sym.absorb(wsym);
            }
            let analyzed = match outcome.result {
                Ok(a) => a,
                Err(reason) => {
                    // A contained panic produces BOTH ledger entries: a
                    // skip record carrying the diagnosis, and a serial
                    // `Complexity` loop report so the Figure 5
                    // accounting still covers the loop.
                    let internal = matches!(reason, SkipReason::InternalError { .. });
                    if matches!(reason, SkipReason::DeadlineExpired) {
                        report.deadline_expired = true;
                    }
                    report.skipped.push(SkippedLoop {
                        unit: info.id.unit.clone(),
                        stmt: info.id.stmt,
                        target: info.target.clone(),
                        reason,
                    });
                    if internal {
                        loops_out.push(LoopReport {
                            unit: info.id.unit.clone(),
                            stmt: info.id.stmt,
                            var: info.var.clone(),
                            depth: info.depth,
                            target: info.target.clone(),
                            classification: Classification::Complexity,
                            parallelized: false,
                            speculative: false,
                            pairs_tested: 0,
                            ops_spent: 0,
                            budget_tripped: false,
                        });
                    }
                    continue;
                }
            };

            // Annotate the outermost parallel loops on the ORIGINAL AST.
            let mut annotated = false;
            let mut speculative = false;
            if let Some(mut directive) = analyzed.candidate {
                if !has_parallel_ancestor(&forest, info, &parallel_loops) {
                    if let Some(u) = rp.unit(&info.id.unit) {
                        directive.collapse = collapse_depth(u, info.id.stmt, &auto_ok);
                    }
                    speculative = directive.speculative;
                    annotated = annotate_loop(&mut rp, &info.id.unit, info.id.stmt, directive);
                    if annotated {
                        parallel_loops.insert(info.id.stmt);
                    } else {
                        speculative = false;
                    }
                }
            }

            loops_out.push(LoopReport {
                unit: info.id.unit.clone(),
                stmt: info.id.stmt,
                var: analyzed.var,
                depth: info.depth,
                target: info.target.clone(),
                classification: analyzed.classification,
                parallelized: annotated && !speculative,
                speculative,
                pairs_tested: analyzed.pairs_tested,
                ops_spent: analyzed.ops_spent,
                budget_tripped: analyzed.budget_tripped,
            });
        }

        Ok(CompileResult {
            rp,
            report,
            loops: loops_out,
        })
    }

    /// Compiles source text and renders the result through the codegen
    /// backend: the annotated program becomes directive-annotated
    /// MiniFort text, hindered loops carry their reason as a
    /// `!$PAR SERIAL` comment, and parallelizable-but-not-emittable
    /// loops are demoted to serial and ledgered as
    /// [`SkipReason::NotEmittable`]. The emitted source is reparsed by
    /// the recovering front end so callers can execute it.
    pub fn compile_and_emit(&self, app: &str, src: &str) -> Result<EmitResult, Diag> {
        let result = self.compile_source(app, src)?;
        Ok(self.emit(result))
    }

    /// The emission half of [`Compiler::compile_and_emit`], usable on
    /// any [`CompileResult`] (e.g. one from a recovering compile).
    pub fn emit(&self, mut result: CompileResult) -> EmitResult {
        // Serial-reason comments: every loop the classifier hindered.
        // Parallelizable loops that went unannotated because an
        // ancestor absorbed them are not "serial" — they run inside the
        // ancestor's parallel region — so they get no comment.
        let mut reasons: std::collections::HashMap<StmtId, String> =
            std::collections::HashMap::new();
        for l in &result.loops {
            if l.classification != Classification::Autoparallelized && !l.parallelized {
                reasons.insert(l.stmt, l.classification.label().to_string());
            }
        }
        for s in &result.report.skipped {
            reasons.insert(s.stmt, s.reason.label().to_string());
        }
        let out = apar_codegen::emit(&result.rp, &reasons);

        // Fold rejections into the report: the loop is serial after
        // all, and the skip ledger says why instead of the program
        // silently degrading.
        for rej in &out.rejected {
            strip_annotation(&mut result.rp, &rej.unit, rej.stmt);
            let target = result
                .loops
                .iter()
                .find(|l| l.stmt == rej.stmt && l.unit == rej.unit)
                .and_then(|l| l.target.clone());
            result.report.skipped.push(SkippedLoop {
                unit: rej.unit.clone(),
                stmt: rej.stmt,
                target,
                reason: SkipReason::NotEmittable {
                    detail: rej.reason.clone(),
                },
            });
            if let Some(l) = result
                .loops
                .iter_mut()
                .find(|l| l.stmt == rej.stmt && l.unit == rej.unit)
            {
                l.parallelized = false;
                l.speculative = false;
            }
        }

        let (reparsed, reparse_diags, _) = frontend_recovering(&out.source);
        EmitResult {
            result,
            source: out.source,
            emitted: out.emitted,
            reparsed,
            reparse_diags,
        }
    }
}

/// Everything [`Compiler::compile_and_emit`] produces.
#[derive(Debug)]
pub struct EmitResult {
    /// The compile result, with codegen rejections folded into the
    /// skip ledger and the corresponding loop reports demoted.
    pub result: CompileResult,
    /// The directive-annotated MiniFort artifact.
    pub source: String,
    /// Loops emitted under a `!$PAR DO` directive.
    pub emitted: usize,
    /// `source`, reparsed and re-resolved by the recovering front end —
    /// ready for the runtime. The emit contract is `reparse_diags`
    /// empty: the artifact round-trips cleanly.
    pub reparsed: ResolvedProgram,
    /// Diagnostics from reparsing (empty when the round-trip holds).
    pub reparse_diags: Vec<Diag>,
}

/// Terminal degraded compile: the front end ran, nothing else will.
/// Every loop the forest discovers lands in the skip ledger with
/// `reason` (skip-entry only, no loop reports, so
/// `loops.len() + skipped.len()` still covers every discovered loop)
/// and the report keeps whatever the completed passes charged.
fn skip_all(rp: ResolvedProgram, mut report: CompileReport, reason: SkipReason) -> CompileResult {
    let forest = LoopForest::build(&rp);
    report.loops = forest.loops.len();
    report.target_loops = forest.targets().count();
    if matches!(reason, SkipReason::DeadlineExpired) {
        report.deadline_expired = true;
    }
    for info in &forest.loops {
        report.skipped.push(SkippedLoop {
            unit: info.id.unit.clone(),
            stmt: info.id.stmt,
            target: info.target.clone(),
            reason: reason.clone(),
        });
    }
    CompileResult {
        rp,
        report,
        loops: Vec::new(),
    }
}

/// Read-only context shared by the per-loop analysis workers.
struct LoopCtx<'a> {
    profile: &'a CompilerProfile,
    /// The pristine resolved program — never carries `auto_par`
    /// annotations while workers run.
    rp: &'a ResolvedProgram,
    /// Prelude facts for the base program (cache entry zero).
    base: &'a Arc<ProgramFacts>,
    cp: &'a ConstProp,
    cache: &'a AnalysisCache,
    /// The compile's cancellation token, checked at the watchdog's own
    /// trip sites.
    cancel: Option<&'a CancelToken>,
    /// Facts-only tier: per-loop facts may be adopted but never built.
    facts_only: bool,
}

impl LoopCtx<'_> {
    fn expired(&self) -> bool {
        self.cancel.is_some_and(|c| c.is_cancelled())
    }
}

/// A deadline trip inside per-loop analysis. Like the panic path, the
/// partial charges and interner fork are dropped: a cancelled loop
/// contributes nothing to the merge.
fn deadline_outcome() -> LoopOutcome {
    LoopOutcome {
        charges: Vec::new(),
        sym: None,
        cacheable: false,
        result: Err(SkipReason::DeadlineExpired),
    }
}

/// What a worker learned about one analyzable loop.
struct AnalyzedLoop {
    var: String,
    classification: Classification,
    /// Directive to apply if the merge pass finds no parallel ancestor
    /// (parallel or speculative candidates only).
    candidate: Option<LoopDirective>,
    pairs_tested: usize,
    ops_spent: u64,
    /// True when a budget trip (watchdog or dependence test) decided
    /// the classification.
    budget_tripped: bool,
}

/// One loop's complete analysis output. Produced independently per
/// loop; the driver merges outcomes in loop order.
struct LoopOutcome {
    /// Per-pass charges, in the order a sequential run records them.
    charges: Vec<(PassId, Duration, u64)>,
    /// The worker's interner fork (absorbed canonically at merge).
    sym: Option<SymMap>,
    /// Safe to store under the loop's content key for later compiles
    /// to splice: the outcome is a pure function of what the key
    /// covers. False for anything coupled to whole-program state (a
    /// facts-build budget trip fires at a program-order-dependent
    /// point) and for non-analyses (panics, deadline expiries,
    /// degraded-tier skips).
    cacheable: bool,
    result: Result<AnalyzedLoop, SkipReason>,
}

/// A stored per-loop analysis outcome: everything the merge pass needs
/// to reproduce the loop's `LoopReport` and op charges bit-for-bit,
/// plus a structural echo of the loop it was computed for, re-verified
/// before every splice (`matches`). Wall time is not stored — a splice
/// bills zero wall, which report signatures deliberately exclude.
///
/// Public (with private fields) so the service's persistent store can
/// serialize records it finds in the shared store and re-admit parsed
/// ones after a restart; [`SplicedLoop::from_json`] is the only way to
/// construct one externally, and it validates every field, so a record
/// recovered from disk is structurally as trustworthy as a live one —
/// and still gets the same `matches` re-verification before any splice.
pub struct SplicedLoop {
    // Structural echo.
    unit: String,
    loop_var: String,
    depth: usize,
    target: Option<String>,
    calls: Vec<String>,
    // The analysis result (AnalyzedLoop fields).
    var: String,
    classification: Classification,
    candidate: Option<LoopDirective>,
    pairs_tested: usize,
    ops_spent: u64,
    budget_tripped: bool,
    /// `(pass, ops)` of every charge, in recorded order.
    charges: Vec<(PassId, u64)>,
}

impl SplicedLoop {
    fn capture(info: &LoopInfo, a: &AnalyzedLoop, charges: &[(PassId, Duration, u64)]) -> Self {
        SplicedLoop {
            unit: info.id.unit.clone(),
            loop_var: info.var.clone(),
            depth: info.depth,
            target: info.target.clone(),
            calls: info.calls.clone(),
            var: a.var.clone(),
            classification: a.classification,
            candidate: a.candidate.clone(),
            pairs_tested: a.pairs_tested,
            ops_spent: a.ops_spent,
            budget_tripped: a.budget_tripped,
            charges: charges.iter().map(|&(p, _, ops)| (p, ops)).collect(),
        }
    }

    /// Does this record's structural echo match the live loop? A
    /// mismatch means the content key collided or the stored record is
    /// stale — the splice is refused and the loop re-analyzed.
    fn matches(&self, info: &LoopInfo) -> bool {
        self.unit == info.id.unit
            && self.loop_var == info.var
            && self.depth == info.depth
            && self.target == info.target
            && self.calls == info.calls
    }

    /// Serializes the record for the persistent store. `None`-valued
    /// options are omitted rather than rendered as `null` (the renderer
    /// has no null); `from_json` treats absence as `None`.
    pub fn to_json(&self) -> Json {
        let strs = |xs: &[String]| Json::Arr(xs.iter().map(|s| Json::Str(s.clone())).collect());
        let mut fields = vec![
            ("unit", Json::Str(self.unit.clone())),
            ("loop_var", Json::Str(self.loop_var.clone())),
            ("depth", Json::Int(self.depth as i64)),
            ("calls", strs(&self.calls)),
            ("var", Json::Str(self.var.clone())),
            ("class", Json::Str(format!("{:?}", self.classification))),
            ("pairs_tested", Json::Int(self.pairs_tested as i64)),
            ("ops_spent", Json::Str(self.ops_spent.to_string())),
            ("budget_tripped", Json::Bool(self.budget_tripped)),
            (
                "charges",
                Json::Arr(
                    self.charges
                        .iter()
                        .map(|&(p, ops)| {
                            Json::Arr(vec![
                                Json::Str(format!("{:?}", p)),
                                Json::Str(ops.to_string()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ];
        if let Some(t) = &self.target {
            fields.push(("target", Json::Str(t.clone())));
        }
        if let Some(d) = &self.candidate {
            let mut dir = vec![
                ("private", strs(&d.private)),
                (
                    "reductions",
                    Json::Arr(
                        d.reductions
                            .iter()
                            .map(|(op, v)| {
                                Json::Arr(vec![
                                    Json::Str(format!("{:?}", op)),
                                    Json::Str(v.clone()),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("schedule", Json::Str(format!("{:?}", d.schedule))),
                ("collapse", Json::Int(d.collapse as i64)),
                ("speculative", Json::Bool(d.speculative)),
            ];
            if let Some(w) = &d.writes {
                dir.push(("writes", strs(w)));
            }
            fields.push(("candidate", Json::Obj(dir)));
        }
        Json::Obj(fields)
    }

    /// Reconstructs a record from a parsed store payload. Total:
    /// any missing field, wrong type, or unknown enum tag returns
    /// `None` — a checksum-valid but semantically corrupt record is
    /// refused here, before it can reach the shared store.
    pub fn from_json(v: &JVal) -> Option<SplicedLoop> {
        let strs = |v: &JVal| -> Option<Vec<String>> {
            v.as_arr()?
                .iter()
                .map(|s| s.as_str().map(str::to_string))
                .collect()
        };
        let candidate = match v.get("candidate") {
            None => None,
            Some(d) => Some(LoopDirective {
                private: strs(d.get("private")?)?,
                reductions: d
                    .get("reductions")?
                    .as_arr()?
                    .iter()
                    .map(|pair| {
                        let pair = pair.as_arr()?;
                        let op = red_op_from_tag(pair.first()?.as_str()?)?;
                        Some((op, pair.get(1)?.as_str()?.to_string()))
                    })
                    .collect::<Option<Vec<_>>>()?,
                schedule: match d.str_field("schedule")? {
                    "Static" => Schedule::Static,
                    "Cyclic" => Schedule::Cyclic,
                    _ => return None,
                },
                collapse: u8::try_from(d.get("collapse")?.as_i64()?).ok()?,
                speculative: d.get("speculative")?.as_bool()?,
                writes: match d.get("writes") {
                    None => None,
                    Some(w) => Some(strs(w)?),
                },
            }),
        };
        Some(SplicedLoop {
            unit: v.str_field("unit")?.to_string(),
            loop_var: v.str_field("loop_var")?.to_string(),
            depth: usize::try_from(v.get("depth")?.as_i64()?).ok()?,
            target: v.str_field("target").map(str::to_string),
            calls: strs(v.get("calls")?)?,
            var: v.str_field("var")?.to_string(),
            classification: classification_from_tag(v.str_field("class")?)?,
            candidate,
            pairs_tested: usize::try_from(v.get("pairs_tested")?.as_i64()?).ok()?,
            ops_spent: v.u64_field("ops_spent")?,
            budget_tripped: v.get("budget_tripped")?.as_bool()?,
            charges: v
                .get("charges")?
                .as_arr()?
                .iter()
                .map(|pair| {
                    let pair = pair.as_arr()?;
                    let p = pass_from_tag(pair.first()?.as_str()?)?;
                    Some((p, pair.get(1)?.as_u64()?))
                })
                .collect::<Option<Vec<_>>>()?,
        })
    }

    fn to_outcome(&self) -> LoopOutcome {
        LoopOutcome {
            charges: self
                .charges
                .iter()
                .map(|&(p, ops)| (p, Duration::ZERO, ops))
                .collect(),
            // No interner fork: the merge's absorb step only
            // reproduces sequential interner state, which nothing
            // downstream of the merge reads.
            sym: None,
            cacheable: false, // already stored; never re-published
            result: Ok(AnalyzedLoop {
                var: self.var.clone(),
                classification: self.classification,
                candidate: self.candidate.clone(),
                pairs_tested: self.pairs_tested,
                ops_spent: self.ops_spent,
                budget_tripped: self.budget_tripped,
            }),
        }
    }
}

/// Inverse of the `Debug` tags `SplicedLoop::to_json` writes. Kept as
/// explicit matches so adding an enum variant without extending the
/// store format is a compile-time-visible decision, not silent skew.
fn classification_from_tag(s: &str) -> Option<Classification> {
    Some(match s {
        "Autoparallelized" => Classification::Autoparallelized,
        "Aliasing" => Classification::Aliasing,
        "Rangeless" => Classification::Rangeless,
        "Indirection" => Classification::Indirection,
        "SymbolAnalysis" => Classification::SymbolAnalysis,
        "AccessRepresentation" => Classification::AccessRepresentation,
        "Complexity" => Classification::Complexity,
        "RealDependence" => Classification::RealDependence,
        "Control" => Classification::Control,
        _ => return None,
    })
}

fn pass_from_tag(s: &str) -> Option<PassId> {
    PassId::ALL.into_iter().find(|p| format!("{:?}", p) == s)
}

fn red_op_from_tag(s: &str) -> Option<RedOp> {
    Some(match s {
        "Add" => RedOp::Add,
        "Mul" => RedOp::Mul,
        "Min" => RedOp::Min,
        "Max" => RedOp::Max,
        _ => return None,
    })
}

/// A fan-out slot nobody filled. Unreachable by construction (every
/// index is claimed exactly once); kept as a structured skip instead of
/// an assert so a bookkeeping bug degrades one loop, not the compile.
fn missing_outcome() -> LoopOutcome {
    LoopOutcome {
        charges: Vec::new(),
        sym: None,
        cacheable: false,
        result: Err(SkipReason::InternalError {
            pass: PassId::Others,
            message: "loop outcome missing after fan-out".to_string(),
        }),
    }
}

/// Analyzes one loop against the pristine resolved program. Pure with
/// respect to the fan-out: the only shared state is the read-only
/// context and the internally synchronized analysis cache, so the
/// outcome does not depend on which worker runs it or when.
///
/// The analysis body runs inside a panic sandbox: a panic in any pass
/// degrades only this loop to a structured [`SkipReason::InternalError`]
/// (the merge also books it as `Complexity` for target accounting),
/// leaving every other loop's outcome untouched at any thread count.
fn analyze_loop(ctx: &LoopCtx<'_>, info: &LoopInfo) -> LoopOutcome {
    let caps = ctx.profile.caps;
    let rp = ctx.rp;
    let unit_name = info.id.unit.as_str();
    if ctx.expired() {
        return deadline_outcome();
    }
    let Some(unit) = rp.unit(unit_name) else {
        return LoopOutcome {
            charges: Vec::new(),
            sym: None,
            cacheable: false,
            result: Err(SkipReason::UnitMissing),
        };
    };
    if unit.lang == apar_minifort::Lang::C && !caps.multilingual {
        return LoopOutcome {
            charges: Vec::new(),
            sym: None,
            cacheable: false,
            result: Err(SkipReason::ForeignLanguage),
        };
    }

    let pass = Cell::new(PassId::Others);
    match catch_unwind(AssertUnwindSafe(|| analyze_loop_inner(ctx, info, &pass))) {
        Ok(outcome) => outcome,
        // The partial charges and interner fork die with the sandbox: a
        // panicked loop contributes nothing to the merge, which is the
        // only outcome reproducible at every thread count.
        Err(payload) => LoopOutcome {
            charges: Vec::new(),
            sym: None,
            cacheable: false,
            result: Err(SkipReason::InternalError {
                pass: pass.get(),
                message: panic_message(payload.as_ref()),
            }),
        },
    }
}

/// Best-effort text from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Marks entry into pass `p` for sandbox diagnostics and fires any
/// injected fault targeting this loop at this pass.
fn enter_pass(ctx: &LoopCtx<'_>, info: &LoopInfo, p: PassId, pass: &Cell<PassId>) {
    pass.set(p);
    if let Some(f) = &ctx.profile.fault {
        if f.pass == p && f.unit == info.id.unit && f.stmt.is_none_or(|s| s == info.id.stmt) {
            panic!("injected fault: {:?} in {}", p, info.id.unit);
        }
    }
}

/// A watchdog trip: the loop is abandoned as `Complexity`, exactly as
/// the dependence test's own budget trip classifies it. `cacheable` is
/// true only when the trip point is a pure function of the loop's own
/// content (inline/ranges/ddtest charges) — a facts-build trip is not
/// (it fires at a whole-program-order-dependent point).
fn complexity_outcome(
    info: &LoopInfo,
    charges: Vec<(PassId, Duration, u64)>,
    sym: Option<SymMap>,
    ops_spent: u64,
    cacheable: bool,
) -> LoopOutcome {
    LoopOutcome {
        charges,
        sym,
        cacheable,
        result: Ok(AnalyzedLoop {
            var: info.var.clone(),
            classification: Classification::Complexity,
            candidate: None,
            pairs_tested: 0,
            ops_spent,
            budget_tripped: true,
        }),
    }
}

fn analyze_loop_inner(ctx: &LoopCtx<'_>, info: &LoopInfo, pass: &Cell<PassId>) -> LoopOutcome {
    let caps = ctx.profile.caps;
    let rp = ctx.rp;
    let unit_name = info.id.unit.as_str();
    let mut charges: Vec<(PassId, Duration, u64)> = Vec::new();
    // One watchdog for the whole per-loop pipeline: every pass charges
    // it, so a pathological loop trips to `Complexity` deterministically
    // no matter which pass the work lands in.
    let loop_ops = OpCounter::with_budget(ctx.profile.loop_op_budget);

    // Choose the program to analyze: inline calls if any.
    enter_pass(ctx, info, PassId::InlineExpansion, pass);
    let has_calls = !info.calls.is_empty();
    let (arp, inline_time, spliced) = if has_calls {
        let t = Instant::now();
        let mut scratch = rp.program.clone();
        let (_n, _fails) = inline::inline_calls_in_loop(
            &mut scratch,
            rp,
            &ctx.base.cg,
            caps,
            unit_name,
            info.id.stmt,
            ctx.profile.inline_depth,
            ctx.profile.inline_stmt_budget,
            &loop_ops,
        );
        match resolve(scratch) {
            Ok(srp) => {
                // Inlining can shrink the program as well as grow it (a
                // callee whose every call site was expanded is removed
                // from the scratch copy), so the splice metric
                // saturates instead of underflowing.
                let spliced = srp.program.stmt_count.saturating_sub(rp.program.stmt_count);
                (Some(srp), t.elapsed(), spliced as u64)
            }
            Err(_) => (None, t.elapsed(), 0),
        }
    } else {
        (None, Duration::ZERO, 0)
    };
    if has_calls {
        charges.push((PassId::InlineExpansion, inline_time, spliced * 4));
        if ctx.expired() {
            return deadline_outcome();
        }
        if loop_ops.exceeded() {
            return complexity_outcome(info, charges, None, loop_ops.spent(), true);
        }
    }
    let arp_ref: &ResolvedProgram = arp.as_ref().unwrap_or(rp);

    // Interprocedural facts for the analyzed program: one cache lookup
    // replaces the per-loop CallGraph / Summaries / AliasInfo rebuilds
    // the sequential driver used to issue. The worker's interner adopts
    // the facts' recorded state so the `summaries` VarIds resolve.
    // Under the facts-only tier the cache may only *adopt* facts that
    // already exist — a miss skips the loop instead of building.
    enter_pass(ctx, info, PassId::Others, pass);
    let facts: Arc<ProgramFacts> = match &arp {
        Some(srp) if ctx.facts_only => match ctx.cache.cached_facts(srp) {
            Some(f) => f,
            None => {
                return LoopOutcome {
                    charges,
                    sym: None,
                    cacheable: false,
                    result: Err(SkipReason::Degraded {
                        tier: DegradeTier::FactsOnly,
                    }),
                }
            }
        },
        Some(srp) => ctx.cache.facts(srp),
        None => Arc::clone(ctx.base),
    };
    // Quarantined facts are a structured refusal from the shared
    // store's crash-loop ledger: the loop is skipped, not analyzed.
    if facts.quarantined {
        return LoopOutcome {
            charges,
            sym: None,
            cacheable: false,
            result: Err(SkipReason::Quarantined),
        };
    }
    let mut sym = facts.sym.clone();
    // The facts build (summaries + alias) is billed where it runs —
    // against the cache's own 32x build budget — and never re-billed to
    // consuming watchdogs: a loop's op accounting is a pure function of
    // its own content, identical whether the facts came from a fresh
    // build, a local hit, or a shared-store adoption. A build that
    // tripped its own budget still poisons every consuming loop, but
    // that outcome is content-coupled to the whole program, so it is
    // never stored under the loop's content key.
    if ctx.expired() {
        return deadline_outcome();
    }
    if facts.budget_tripped {
        return complexity_outcome(info, charges, Some(sym), loop_ops.spent(), false);
    }

    // Ranges for the analyzed program (recomputed for the unit when
    // inlining changed it).
    let state: ScalarState = if arp.is_some() {
        let seed = ctx.cp.seeds.get(unit_name).cloned().unwrap_or_default();
        let ur = apar_analysis::ranges::analyze_unit(
            arp_ref,
            unit_name,
            &mut sym,
            caps,
            &facts.summaries,
            &seed,
            &loop_ops,
        );
        ur.at_loop.get(&info.id.stmt).cloned().unwrap_or_default()
    } else {
        ctx.cp
            .ranges
            .get(unit_name)
            .and_then(|ur| ur.at_loop.get(&info.id.stmt))
            .cloned()
            .unwrap_or_default()
    };
    if ctx.expired() {
        return deadline_outcome();
    }
    if loop_ops.exceeded() {
        return complexity_outcome(info, charges, Some(sym), loop_ops.spent(), true);
    }

    // Locate the loop body in the analyzed program.
    let Some(aunit) = arp_ref.unit(unit_name) else {
        return LoopOutcome {
            charges,
            sym: Some(sym),
            cacheable: false,
            result: Err(SkipReason::InlinedAway),
        };
    };
    let Some((var, lo, hi, step, body)) = find_do(aunit, info.id.stmt) else {
        return LoopOutcome {
            charges,
            sym: Some(sym),
            cacheable: false,
            result: Err(SkipReason::HeaderMissing),
        };
    };

    // Dependence test.
    enter_pass(ctx, info, PassId::DataDependence, pass);
    let t = Instant::now();
    let pre_dd = loop_ops.spent();
    let la = access::collect(arp_ref, unit_name, &body, &mut sym, &state);
    let input = DdInput {
        rp: arp_ref,
        unit: unit_name,
        loop_var: &var,
        lo: &lo,
        hi: &hi,
        step: step.as_ref(),
        state: &state,
        la: &la,
    };
    let dd = ddtest::test_loop(
        &input,
        &mut sym,
        caps,
        &facts.alias,
        &facts.summaries,
        &loop_ops,
    );
    // Per-pass report buckets are spent() deltas: the watchdog's
    // pre-charges (inline, facts share, ranges) belong to the loop's
    // own ops_spent, not to the published Figure 2 pass costs.
    let dd_ops = loop_ops.spent() - pre_dd;
    charges.push((PassId::DataDependence, t.elapsed(), dd_ops));

    // Privatization.
    enter_pass(ctx, info, PassId::Privatization, pass);
    let t = Instant::now();
    let pre_priv = loop_ops.spent();
    let priv_res = privatize::analyze(
        arp_ref,
        aunit,
        info.id.stmt,
        &body,
        &var,
        &la,
        &state,
        &mut sym,
        caps,
        &loop_ops,
    );
    charges.push((
        PassId::Privatization,
        t.elapsed(),
        loop_ops.spent() - pre_priv,
    ));

    // Reduction recognition.
    enter_pass(ctx, info, PassId::Reduction, pass);
    let t = Instant::now();
    let Some(table) = arp_ref.tables.get(unit_name) else {
        // A resolved program always carries a table per unit; a missing
        // one is a front-end invariant violation, contained to this
        // loop as a structured skip rather than an index panic.
        return LoopOutcome {
            charges,
            sym: Some(sym),
            cacheable: false,
            result: Err(SkipReason::InternalError {
                pass: PassId::Reduction,
                message: format!("symbol table missing for unit {unit_name}"),
            }),
        };
    };
    let reds = reduction::find_reductions(&body, &|n| table.is_array(n));
    charges.push((PassId::Reduction, t.elapsed(), la.accesses.len() as u64));

    // Decision.
    let red_names: HashSet<&str> = reds.iter().map(|r| r.var.as_str()).collect();
    let leftover = priv_res
        .failed_scalars
        .iter()
        .filter(|s| !red_names.contains(s.as_str()))
        .count();
    let private_arrays: HashSet<&str> =
        priv_res.private_arrays.iter().map(|s| s.as_str()).collect();
    let classification = classify(&dd, la.has_io || la.has_escape, leftover, &|d| {
        private_arrays.contains(d.array.as_str())
    });
    let parallel = classification == Classification::Autoparallelized;

    // Speculative candidates: hindrances a runtime dependence test can
    // discharge (the array conflict is data-dependent), with no I/O or
    // escaping effects to roll back and no unprivatizable scalars
    // (those would conflict on every run).
    let spec_candidate = ctx.profile.runtime_test
        && matches!(
            classification,
            Classification::Indirection
                | Classification::Rangeless
                | Classification::SymbolAnalysis
        )
        && !la.has_io
        && !la.has_escape
        && leftover == 0;
    // A unit present in the analyzed program but absent from the
    // original one cannot be annotated anyway; treat a missing original
    // table as "no candidate" instead of an index panic.
    let candidate = if (parallel || spec_candidate) && rp.tables.contains_key(unit_name) {
        let orig_table = &rp.tables[unit_name];
        // Write summary for speculative regions: the cells a rollback
        // must restore. Only exact summaries are emitted — a body with
        // calls may write through its callees, and an analysis access
        // list can reference transform-introduced temporaries absent
        // from the original program; either case leaves `writes` unset
        // so the runtime falls back to a full checkpoint.
        let writes = if !parallel && la.calls.is_empty() {
            let mut w: Vec<String> = la
                .accesses
                .iter()
                .filter(|a| a.kind == AccessKind::Write)
                .map(|a| a.array.clone())
                .chain(la.scalar_writes.iter().map(|(n, _, _)| n.clone()))
                .collect();
            w.sort_unstable();
            w.dedup();
            if w.iter().all(|n| orig_table.get(n).is_some()) {
                Some(w)
            } else {
                None
            }
        } else {
            None
        };
        Some(LoopDirective {
            private: priv_res
                .private_scalars
                .iter()
                .chain(priv_res.private_arrays.iter())
                .filter(|n| orig_table.get(n).is_some())
                .cloned()
                .collect(),
            reductions: reds.iter().map(|r| (r.op, r.var.clone())).collect(),
            // Conditional work makes per-iteration cost index-dependent;
            // a cyclic schedule then balances the workers better than
            // contiguous chunks.
            schedule: if imbalanced_body(&body) {
                Schedule::Cyclic
            } else {
                Schedule::Static
            },
            // The merge pass fills in the proved-parallel nest depth.
            collapse: 1,
            speculative: !parallel,
            writes,
        })
    } else {
        None
    };

    LoopOutcome {
        charges,
        sym: Some(sym),
        cacheable: true,
        result: Ok(AnalyzedLoop {
            var,
            classification,
            candidate,
            pairs_tested: dd.pairs_tested,
            ops_spent: loop_ops.spent(),
            budget_tripped: dd.budget_exceeded,
        }),
    }
}

/// Finds a DO loop by id and clones its header and body.
fn find_do(
    unit: &apar_minifort::Unit,
    id: StmtId,
) -> Option<(
    String,
    apar_minifort::ast::Expr,
    apar_minifort::ast::Expr,
    Option<apar_minifort::ast::Expr>,
    Block,
)> {
    let mut found = None;
    unit.body.walk_stmts(&mut |s| {
        if s.id == id && found.is_none() {
            if let StmtKind::Do {
                var,
                lo,
                hi,
                step,
                body,
                ..
            } = &s.kind
            {
                found = Some((
                    var.clone(),
                    lo.clone(),
                    hi.clone(),
                    step.clone(),
                    body.clone(),
                ));
            }
        }
    });
    found
}

/// `COLLAPSE(n)` value for the loop `id`: the length of the perfect
/// nest rooted there, counting only loops the analysis itself proved
/// parallel (`auto_ok`). Always at least 1 — the annotated loop.
fn collapse_depth(u: &apar_minifort::Unit, id: StmtId, auto_ok: &HashSet<StmtId>) -> u8 {
    let Some(stmt) = find_loop(u, id) else {
        return 1;
    };
    let mut depth: u8 = 1;
    let mut body = match &stmt.kind {
        StmtKind::Do { body, .. } => body,
        _ => return 1,
    };
    while body.stmts.len() == 1 {
        match &body.stmts[0].kind {
            StmtKind::Do { body: inner, .. } if auto_ok.contains(&body.stmts[0].id) => {
                depth = depth.saturating_add(1);
                body = inner;
            }
            _ => break,
        }
    }
    depth
}

fn has_parallel_ancestor(
    forest: &LoopForest,
    info: &apar_analysis::loops::LoopInfo,
    parallel: &HashSet<StmtId>,
) -> bool {
    let mut cur = info.parent;
    while let Some(p) = cur {
        if parallel.contains(&p) {
            return true;
        }
        cur = forest
            .loops
            .iter()
            .find(|l| l.id.stmt == p && l.id.unit == info.id.unit)
            .and_then(|l| l.parent);
    }
    false
}

/// Writes the `auto_par` annotation onto a DO statement.
fn annotate_loop(
    rp: &mut ResolvedProgram,
    unit: &str,
    id: StmtId,
    directive: LoopDirective,
) -> bool {
    let Some(u) = rp.program.unit_mut(unit) else {
        return false;
    };
    let mut done = false;
    u.body.walk_stmts_mut(&mut |s| {
        if s.id == id && !done {
            if let StmtKind::Do { auto_par, .. } = &mut s.kind {
                *auto_par = Some(directive.clone());
                done = true;
            }
        }
    });
    done
}

/// Removes the `auto_par` annotation from a DO statement (codegen
/// rejected its directive, so the compiled program must agree with the
/// emitted serial source).
fn strip_annotation(rp: &mut ResolvedProgram, unit: &str, id: StmtId) {
    if let Some(u) = rp.program.unit_mut(unit) {
        u.body.walk_stmts_mut(&mut |s| {
            if s.id == id {
                if let StmtKind::Do { auto_par, .. } = &mut s.kind {
                    *auto_par = None;
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(src: &str, profile: CompilerProfile) -> CompileResult {
        Compiler::new(profile)
            .compile_source("test", src)
            .expect("compile")
    }

    #[test]
    fn simple_loop_is_parallelized_and_annotated() {
        let r = compile(
            "PROGRAM P\nREAL A(100), B(100)\nDO I = 1, 100\nA(I) = B(I) + 1.0\nENDDO\nEND\n",
            CompilerProfile::polaris2008(),
        );
        assert_eq!(r.loops.len(), 1);
        assert_eq!(r.loops[0].classification, Classification::Autoparallelized);
        assert!(r.loops[0].parallelized);
        // The annotation landed in the AST.
        let mut annotated = 0;
        r.rp.main_unit().unwrap().body.walk_stmts(&mut |s| {
            if let StmtKind::Do {
                auto_par: Some(_), ..
            } = &s.kind
            {
                annotated += 1;
            }
        });
        assert_eq!(annotated, 1);
    }

    #[test]
    fn nested_parallel_gets_outer_annotation_only() {
        let r = compile(
            "PROGRAM P\nREAL A(100, 100)\nDO I = 1, 100\nDO J = 1, 100\nA(J, I) = 1.0\nENDDO\nENDDO\nEND\n",
            CompilerProfile::polaris2008(),
        );
        assert_eq!(r.loops.len(), 2);
        assert!(r
            .loops
            .iter()
            .all(|l| l.classification == Classification::Autoparallelized));
        let outer = r.loops.iter().find(|l| l.depth == 0).unwrap();
        let inner = r.loops.iter().find(|l| l.depth == 1).unwrap();
        assert!(outer.parallelized);
        assert!(!inner.parallelized, "inner loop must not be annotated");
    }

    #[test]
    fn reduction_loop_parallelized_with_clause() {
        let r = compile(
            "PROGRAM P\nREAL A(100)\nS = 0.0\nDO I = 1, 100\nS = S + A(I)\nENDDO\nWRITE(*,*) S\nEND\n",
            CompilerProfile::polaris2008(),
        );
        assert_eq!(r.loops[0].classification, Classification::Autoparallelized);
        let mut dir = None;
        r.rp.main_unit().unwrap().body.walk_stmts(&mut |s| {
            if let StmtKind::Do {
                auto_par: Some(d), ..
            } = &s.kind
            {
                dir = Some(d.clone());
            }
        });
        let d = dir.expect("annotated");
        assert_eq!(d.reductions.len(), 1);
        assert_eq!(d.reductions[0].1, "S");
    }

    #[test]
    fn private_scalar_listed_in_directive() {
        let r = compile(
            "PROGRAM P\nREAL A(100)\nDO I = 1, 100\nT = A(I) * 2.0\nA(I) = T\nENDDO\nEND\n",
            CompilerProfile::polaris2008(),
        );
        assert!(r.loops[0].parallelized);
        let mut dir = None;
        r.rp.main_unit().unwrap().body.walk_stmts(&mut |s| {
            if let StmtKind::Do {
                auto_par: Some(d), ..
            } = &s.kind
            {
                dir = Some(d.clone());
            }
        });
        assert!(dir.expect("directive").private.contains(&"T".to_string()));
    }

    #[test]
    fn induction_variable_loop_parallelizes() {
        let r = compile(
            "PROGRAM P\nREAL A(200)\nK = 0\nDO I = 1, 100\nK = K + 2\nA(K) = 1.0\nENDDO\nEND\n",
            CompilerProfile::polaris2008(),
        );
        assert_eq!(
            r.loops[0].classification,
            Classification::Autoparallelized,
            "induction substitution should enable parallelization"
        );
    }

    #[test]
    fn call_inlined_then_parallelized() {
        let r = compile(
            "PROGRAM P\nREAL A(100)\nDO I = 1, 100\nCALL SET(A, I)\nENDDO\nEND\nSUBROUTINE SET(X, K)\nREAL X(*)\nX(K) = K * 2.0\nEND\n",
            CompilerProfile::polaris2008(),
        );
        let main_loop = r.loops.iter().find(|l| l.unit == "P").unwrap();
        assert_eq!(main_loop.classification, Classification::Autoparallelized);
        assert!(main_loop.parallelized);
    }

    #[test]
    fn io_loop_is_control() {
        let r = compile(
            "PROGRAM P\nDO I = 1, 10\nWRITE(*,*) I\nENDDO\nEND\n",
            CompilerProfile::polaris2008(),
        );
        assert_eq!(r.loops[0].classification, Classification::Control);
        assert!(!r.loops[0].parallelized);
    }

    #[test]
    fn target_histogram_counts() {
        let r = compile(
            "PROGRAM P\nREAL A(100)\nINTEGER IA(100)\n!$TARGET GOOD\nDO I = 1, 100\nA(I) = 1.0\nENDDO\n!$TARGET GATHER\nDO I = 1, 100\nA(IA(I)) = A(IA(I)) + 1.0\nENDDO\nEND\n",
            CompilerProfile::polaris2008(),
        );
        let h = r.target_histogram();
        assert!(h.contains(&(Classification::Autoparallelized, 1)));
        assert!(h.contains(&(Classification::Indirection, 1)));
    }

    #[test]
    fn pass_costs_recorded() {
        let r = compile(
            "PROGRAM P\nREAL A(100)\nDO I = 1, 100\nA(I) = 1.0\nENDDO\nEND\n",
            CompilerProfile::polaris2008(),
        );
        assert!(r.report.total_ops() > 0);
        assert!(r.report.per_pass.contains_key(&PassId::DataDependence));
        assert!(r.report.statements > 0);
    }

    #[test]
    fn fully_inlined_callee_does_not_break_the_splice_metric() {
        // SET's only call site is inside the loop: the analyzed copy
        // drops the unit entirely after expansion. The splice metric
        // must saturate (debug builds would panic on underflow) and the
        // loop must still parallelize from the inlined body.
        let r = compile(
            "PROGRAM P\nREAL A(100)\nDO I = 1, 100\nCALL SET(A, I)\nENDDO\nEND\nSUBROUTINE SET(X, K)\nREAL X(*)\nX(K) = K * 2.0\nEND\n",
            CompilerProfile::polaris2008(),
        );
        let main_loop = r.loops.iter().find(|l| l.unit == "P").unwrap();
        assert_eq!(main_loop.classification, Classification::Autoparallelized);
        assert!(main_loop.parallelized);
        assert!(r.report.per_pass.contains_key(&PassId::InlineExpansion));
        // The original program keeps SET (only the scratch copy drops
        // it), so SET's own loops — none here — would still resolve.
        assert!(r.rp.unit("SET").is_some());
    }

    #[test]
    fn foreign_loop_is_recorded_as_skipped_not_lost() {
        let r = compile(
            "PROGRAM P\nREAL A(10)\nDO I = 1, 10\nA(I) = 1.0\nENDDO\nCALL CW\nEND\n!LANG C\nSUBROUTINE CW\nREAL B(10)\nDO J = 1, 10\nB(J) = 0.0\nENDDO\nEND\n",
            CompilerProfile::polaris2008(),
        );
        // The C unit's loop does not silently vanish: it lands in the
        // skip ledger with its reason, and the analyzed-loop list plus
        // the ledger together cover every loop the forest discovered.
        assert_eq!(r.loops.len() + r.report.skipped.len(), r.report.loops);
        let skip = r
            .report
            .skipped
            .iter()
            .find(|s| s.unit == "CW")
            .expect("C loop recorded");
        assert_eq!(skip.reason, SkipReason::ForeignLanguage);
        assert_eq!(
            r.report.skip_histogram(),
            vec![(SkipReason::ForeignLanguage, 1)]
        );
    }

    #[test]
    fn threads_do_not_change_reports() {
        let src = "PROGRAM P\nREAL A(100), B(100)\nS = 0.0\nDO I = 1, 100\nA(I) = B(I) + 1.0\nENDDO\nDO I = 1, 100\nS = S + A(I)\nENDDO\nDO I = 2, 100\nA(I) = A(I - 1)\nENDDO\nDO I = 1, 100\nCALL SET(B, I)\nENDDO\nWRITE(*,*) S\nEND\nSUBROUTINE SET(X, K)\nREAL X(*)\nX(K) = K * 2.0\nEND\n";
        let seq = compile(src, CompilerProfile::polaris2008());
        let par = compile(src, CompilerProfile::polaris2008().with_threads(4));
        assert_eq!(seq.loops.len(), par.loops.len());
        for (a, b) in seq.loops.iter().zip(&par.loops) {
            assert_eq!(a.unit, b.unit);
            assert_eq!(a.stmt, b.stmt);
            assert_eq!(a.classification, b.classification);
            assert_eq!(a.parallelized, b.parallelized);
            assert_eq!(a.ops_spent, b.ops_spent);
            assert_eq!(a.pairs_tested, b.pairs_tested);
        }
        for p in PassId::ALL {
            let sa = seq.report.per_pass.get(&p).map_or(0, |c| c.ops);
            let sb = par.report.per_pass.get(&p).map_or(0, |c| c.ops);
            assert_eq!(sa, sb, "{:?} ops differ across thread counts", p);
        }
    }

    #[test]
    fn injected_panic_degrades_exactly_the_faulted_loop() {
        let src = "PROGRAM P\nREAL A(100), B(100)\nS = 0.0\nDO I = 1, 100\nA(I) = B(I) + 1.0\nENDDO\nDO I = 1, 100\nS = S + A(I)\nENDDO\nDO I = 2, 100\nA(I) = A(I - 1)\nENDDO\nDO I = 1, 100\nCALL SET(B, I)\nENDDO\nWRITE(*,*) S\nEND\nSUBROUTINE SET(X, K)\nREAL X(*)\nX(K) = K * 2.0\nEND\n";
        let clean = compile(src, CompilerProfile::polaris2008());
        let victim = clean.loops[1].stmt;
        for p in [
            PassId::InlineExpansion,
            PassId::Others,
            PassId::DataDependence,
            PassId::Privatization,
            PassId::Reduction,
        ] {
            let profile = CompilerProfile::polaris2008().with_fault(p, "P", Some(victim));
            let seq = compile(src, profile.clone());
            let par = compile(src, profile.with_threads(4));
            for r in [&seq, &par] {
                assert_eq!(r.report.panicked_loops(), 1, "{:?}", p);
                let skip = r
                    .report
                    .skipped
                    .iter()
                    .find(|s| s.stmt == victim)
                    .expect("panicked loop lands in the skip ledger");
                assert!(
                    matches!(&skip.reason, SkipReason::InternalError { pass, .. } if *pass == p),
                    "{:?}: {:?}",
                    p,
                    skip.reason
                );
                // The victim stays accounted for: serial, Complexity.
                let v = r.loops.iter().find(|l| l.stmt == victim).unwrap();
                assert_eq!(v.classification, Classification::Complexity);
                assert!(!v.parallelized && !v.speculative);
                // Every other loop is bit-identical to the clean compile.
                assert_eq!(r.loops.len(), clean.loops.len());
                for (a, b) in r.loops.iter().zip(&clean.loops) {
                    if a.stmt == victim {
                        continue;
                    }
                    assert_eq!(a.classification, b.classification, "{:?}", p);
                    assert_eq!(a.parallelized, b.parallelized, "{:?}", p);
                    assert_eq!(a.ops_spent, b.ops_spent, "{:?}", p);
                    assert_eq!(a.pairs_tested, b.pairs_tested, "{:?}", p);
                }
            }
            // Both thread counts agree completely, victim included.
            for (a, b) in seq.loops.iter().zip(&par.loops) {
                assert_eq!(a.stmt, b.stmt);
                assert_eq!(a.classification, b.classification);
                assert_eq!(a.ops_spent, b.ops_spent);
            }
        }
    }

    #[test]
    fn watchdog_trips_prelude_passes_to_complexity() {
        // A budget this small trips during inlining — before the
        // dependence test ever runs — and must classify the loop
        // Complexity rather than panic or misreport it.
        let mut profile = CompilerProfile::polaris2008();
        profile.loop_op_budget = 1;
        let r = compile(
            "PROGRAM P\nREAL A(100)\nDO I = 1, 100\nCALL SET(A, I)\nENDDO\nEND\nSUBROUTINE SET(X, K)\nREAL X(*)\nX(K) = K * 2.0\nEND\n",
            profile,
        );
        let main_loop = r.loops.iter().find(|l| l.unit == "P").unwrap();
        assert_eq!(main_loop.classification, Classification::Complexity);
        assert!(!main_loop.parallelized);
        assert!(main_loop.budget_tripped);
        assert!(r.budget_tripped_loops() >= 1);
        assert_eq!(r.report.panicked_loops(), 0);
    }

    #[test]
    fn recovering_compile_degrades_garbled_unit_to_diags() {
        // Unit Q has a garbled statement; unit P is clean and must still
        // get its loop parallelized.
        let src = "PROGRAM P\nREAL A(100)\nDO I = 1, 100\nA(I) = 1.0\nENDDO\nEND\nSUBROUTINE Q(Y)\nY = = 'oops\nEND\n";
        let r =
            Compiler::new(CompilerProfile::polaris2008()).compile_source_recovering("test", src);
        assert!(!r.report.diags.is_empty());
        let p = r.loops.iter().find(|l| l.unit == "P").unwrap();
        assert_eq!(p.classification, Classification::Autoparallelized);
    }

    #[test]
    fn recovering_compile_matches_strict_on_clean_input() {
        let src = "PROGRAM P\nREAL A(100), B(100)\nDO I = 1, 100\nA(I) = B(I) + 1.0\nENDDO\nEND\n";
        let strict = compile(src, CompilerProfile::polaris2008());
        let rec =
            Compiler::new(CompilerProfile::polaris2008()).compile_source_recovering("test", src);
        assert!(rec.report.diags.is_empty());
        assert!(rec.report.dropped_units.is_empty());
        assert_eq!(strict.loops.len(), rec.loops.len());
        for (a, b) in strict.loops.iter().zip(rec.loops.iter()) {
            assert_eq!(a.classification, b.classification);
            assert_eq!(a.ops_spent, b.ops_spent);
        }
    }

    #[test]
    fn recovering_compile_is_total_on_noise() {
        let r = Compiler::new(CompilerProfile::polaris2008())
            .compile_source_recovering("test", "@#%^\u{0}\n= = =\nEND END END\n");
        assert!(!r.report.diags.is_empty());
        assert!(r.loops.is_empty());
    }

    #[test]
    fn expired_token_degrades_to_structured_skips() {
        let src = "PROGRAM P\nREAL A(100)\nDO I = 1, 100\nA(I) = 1.0\nENDDO\nDO I = 1, 100\nCALL SET(A, I)\nENDDO\nEND\nSUBROUTINE SET(X, K)\nREAL X(*)\nX(K) = K * 2.0\nEND\n";
        let r = Compiler::new(CompilerProfile::polaris2008())
            .with_cancel(crate::cancel::CancelToken::expired())
            .compile_source("test", src)
            .expect("compile");
        assert!(r.report.deadline_expired);
        assert!(r.loops.is_empty());
        // Every discovered loop is accounted for in the skip ledger.
        assert_eq!(r.report.skipped.len(), r.report.loops);
        assert!(r
            .report
            .skipped
            .iter()
            .all(|s| s.reason == SkipReason::DeadlineExpired));
        // A pre-cancelled token expires at the first checkpoint no
        // matter the thread count: the degraded result is deterministic.
        let r4 = Compiler::new(CompilerProfile::polaris2008().with_threads(4))
            .with_cancel(crate::cancel::CancelToken::expired())
            .compile_source("test", src)
            .expect("compile");
        assert_eq!(r.report_signature(), r4.report_signature());
        // And it can never pass for a full compile.
        let full = compile(src, CompilerProfile::polaris2008());
        assert_ne!(r.report_signature(), full.report_signature());
    }

    #[test]
    fn parse_only_tier_ledgers_every_loop() {
        let src = "PROGRAM P\nREAL A(100)\nDO I = 1, 100\nA(I) = 1.0\nENDDO\nEND\n";
        let r = Compiler::new(CompilerProfile::polaris2008())
            .with_degrade(DegradeTier::ParseOnly)
            .compile_source("test", src)
            .expect("compile");
        assert_eq!(r.report.degrade, Some(DegradeTier::ParseOnly));
        assert!(!r.report.deadline_expired);
        assert!(r.loops.is_empty());
        assert_eq!(r.report.skipped.len(), r.report.loops);
        assert_eq!(r.report.loops, 1);
        assert!(matches!(
            r.report.skipped[0].reason,
            SkipReason::Degraded {
                tier: DegradeTier::ParseOnly
            }
        ));
        assert!(r.report.statements > 0, "the front end still ran");
    }

    #[test]
    fn facts_only_tier_analyzes_callless_loops_and_skips_cold_call_loops() {
        let src = "PROGRAM P\nREAL A(100), B(100)\nDO I = 1, 100\nA(I) = B(I) + 1.0\nENDDO\nDO I = 1, 100\nCALL SET(B, I)\nENDDO\nEND\nSUBROUTINE SET(X, K)\nREAL X(*)\nX(K) = K * 2.0\nEND\n";
        let r = Compiler::new(CompilerProfile::polaris2008())
            .with_degrade(DegradeTier::FactsOnly)
            .compile_source("test", src)
            .expect("compile");
        assert_eq!(r.report.degrade, Some(DegradeTier::FactsOnly));
        // The call-free loop rides on the seeded base facts and is
        // fully analyzed even at the degraded tier.
        let plain = r.loops.iter().find(|l| l.unit == "P").expect("analyzed");
        assert_eq!(plain.classification, Classification::Autoparallelized);
        // The call loop needs inlined-program facts the cold cache
        // doesn't have; facts-only refuses to build them.
        assert!(r.report.skipped.iter().any(|s| matches!(
            s.reason,
            SkipReason::Degraded {
                tier: DegradeTier::FactsOnly
            }
        )));
        assert_eq!(r.loops.len() + r.report.skipped.len(), r.report.loops);
    }

    #[test]
    fn true_dependence_stays_serial() {
        let r = compile(
            "PROGRAM P\nREAL A(100)\nDO I = 2, 100\nA(I) = A(I - 1)\nENDDO\nEND\n",
            CompilerProfile::polaris2008(),
        );
        assert_eq!(r.loops[0].classification, Classification::RealDependence);
        assert!(!r.loops[0].parallelized);
    }

    #[test]
    fn compile_and_emit_roundtrips_annotated_source() {
        let e = Compiler::new(CompilerProfile::polaris2008())
            .compile_and_emit(
                "test",
                "PROGRAM P\nREAL A(100), B(100)\nDO I = 1, 100\nA(I) = B(I) + 1.0\nENDDO\nWRITE(*, *) A(1)\nEND\n",
            )
            .expect("compile");
        assert_eq!(e.emitted, 1);
        assert!(e.reparse_diags.is_empty(), "{:?}", e.reparse_diags);
        assert!(e.source.contains("!$PAR DO"), "{}", e.source);
        let mut reparsed_par = 0;
        for u in &e.reparsed.program.units {
            u.body.walk_stmts(&mut |s| {
                if let StmtKind::Do { auto_par: Some(_), .. } = &s.kind {
                    reparsed_par += 1;
                }
            });
        }
        assert_eq!(reparsed_par, 1);
    }

    #[test]
    fn emit_writes_serial_reason_for_hindered_loop() {
        let e = Compiler::new(CompilerProfile::polaris2008())
            .compile_and_emit(
                "test",
                "PROGRAM P\nREAL A(100)\nDO I = 2, 100\nA(I) = A(I - 1)\nENDDO\nEND\n",
            )
            .expect("compile");
        assert_eq!(e.emitted, 0);
        assert!(
            e.source.contains("!$PAR SERIAL real dependence"),
            "{}",
            e.source
        );
        // The structured comment is directive-shaped noise to the
        // parser: the loop reparses serial.
        assert!(e.reparse_diags.is_empty(), "{:?}", e.reparse_diags);
    }

    #[test]
    fn emit_ledgers_unrunnable_directive_as_not_emittable() {
        let compiler = Compiler::new(CompilerProfile::polaris2008());
        let mut r = compiler
            .compile_source(
                "test",
                "SUBROUTINE S(T, N)\nREAL T(*)\nDO I = 1, N\nT(1) = 2.0\nS2 = T(1) + 1.0\nENDDO\nEND\n",
            )
            .expect("compile");
        // Force a directive the runtime cannot execute (privatized
        // assumed-size array) onto the loop, as a hypothetical stronger
        // analysis might, and check emission demotes + ledgers it.
        let id = r.loops[0].stmt;
        annotate_loop(
            &mut r.rp,
            "S",
            id,
            LoopDirective {
                private: vec!["T".to_string()],
                ..LoopDirective::default()
            },
        );
        r.loops[0].parallelized = true;
        let e = compiler.emit(r);
        assert_eq!(e.emitted, 0);
        assert!(!e.result.loops[0].parallelized);
        assert!(e
            .result
            .report
            .skipped
            .iter()
            .any(|s| matches!(&s.reason, SkipReason::NotEmittable { detail }
                if detail.contains("assumed size"))));
        assert!(
            e.source.contains("!$PAR SERIAL not emittable:"),
            "{}",
            e.source
        );
        // The demotion also stripped the annotation from the compiled
        // program, so result and artifact agree.
        let mut still_annotated = false;
        e.result.rp.program.units[0].body.walk_stmts(&mut |s| {
            if let StmtKind::Do { auto_par: Some(_), .. } = &s.kind {
                still_annotated = true;
            }
        });
        assert!(!still_annotated);
        assert!(e.reparse_diags.is_empty());
    }

    const CALL_SRC: &str = "PROGRAM P\nREAL A(100)\nDO I = 1, 100\nCALL SET(A, I)\nENDDO\nEND\nSUBROUTINE SET(X, K)\nREAL X(*)\nX(K) = K * 2.0\nEND\n";

    #[test]
    fn loop_ops_are_content_local_across_unrelated_units() {
        // Regression for the cache-state-dependent billing bug: a
        // loop's ops_spent must be a function of its own content
        // closure, never of how expensive the *rest* of the program was
        // to summarize. Appending a never-called unit (whose summary
        // build inflates the whole-program facts cost) must leave the
        // first unit's loop report untouched. The old code charged
        // `facts.build_ops / 32` to every consumer and would differ.
        let padded = format!(
            "{CALL_SRC}SUBROUTINE ZZZ(Y)\nREAL Y(200)\nDO J = 1, 200\nDO K = 1, 200\nY(J) = Y(J) + K * 1.0\nENDDO\nENDDO\nEND\n"
        );
        let lean = compile(CALL_SRC, CompilerProfile::polaris2008());
        let fat = compile(&padded, CompilerProfile::polaris2008());
        let a = lean.loops.iter().find(|l| l.unit == "P").unwrap();
        let b = fat.loops.iter().find(|l| l.unit == "P").unwrap();
        assert_eq!(a.ops_spent, b.ops_spent, "billing leaked across units");
        assert_eq!(a.classification, b.classification);
        assert_eq!(a.budget_tripped, b.budget_tripped);
    }

    #[test]
    fn warm_equals_cold_on_budget_marginal_suite() {
        // Pin warm == cold == plain at a budget barely above the
        // loops' own content cost: any charge that depends on cache
        // state — e.g. re-billing the facts build to a consumer that
        // hit the shared store — would trip the watchdog on one side
        // only and flip a classification.
        let probe = compile(CALL_SRC, CompilerProfile::polaris2008());
        let max_ops = probe.loops.iter().map(|l| l.ops_spent).max().unwrap();
        let mut profile = CompilerProfile::polaris2008();
        profile.loop_op_budget = max_ops + 4;

        let plain = compile(CALL_SRC, profile.clone());
        assert_eq!(
            plain.budget_tripped_loops(),
            0,
            "the margin covers each loop's own content cost"
        );

        let store = Arc::new(SharedFactsStore::bounded(64, 8 << 20));
        let cold = Compiler::new(profile.clone())
            .with_shared_facts(Arc::clone(&store))
            .compile_source("test", CALL_SRC)
            .expect("compile");
        let warm = Compiler::new(profile)
            .with_shared_facts(Arc::clone(&store))
            .compile_source("test", CALL_SRC)
            .expect("compile");
        assert_eq!(plain.report_signature(), cold.report_signature());
        assert_eq!(cold.report_signature(), warm.report_signature());
        assert!(
            store.stats().loop_hits > 0,
            "the warm compile spliced stored loop records: {:?}",
            store.stats()
        );
    }

    #[test]
    fn fortgen_programs_compile_totally_even_when_mutilated() {
        // Satellite: every panic/unwrap removed from the pipeline must
        // stay removed. Generated programs — intact, truncated at
        // arbitrary line boundaries, and fully garbled — all go through
        // the recovering entry point and come back as structured
        // results (reports plus diags), never a panic.
        use apar_minicheck::fortgen::{gen_program, GenConfig};
        use apar_minicheck::{Rng, BASE_SEED};
        let compiler = Compiler::new(CompilerProfile::polaris2008());
        let mut rng = Rng::new(BASE_SEED ^ 0x10C8);
        for i in 0..8 {
            let src = gen_program(&mut rng, &GenConfig::default());
            let r = compiler.compile_source_recovering(&format!("gen-{i}"), &src);
            assert_eq!(r.report.panicked_loops(), 0, "gen-{i} panicked");
            let _ = r.report_signature(); // every outcome is renderable
            // Truncate mid-program: units lose their END, loops their
            // ENDDO. Recovery must still produce a structured result.
            let lines: Vec<&str> = src.lines().collect();
            let cut = rng.usize_in(1, lines.len() - 1);
            let truncated = lines[..cut].join("\n");
            let t = compiler.compile_source_recovering(&format!("gen-{i}-cut"), &truncated);
            assert_eq!(t.report.panicked_loops(), 0, "gen-{i}-cut panicked");
            let _ = t.report_signature();
        }
        // Fully garbled input exercises the empty-program fallback:
        // nothing parses, the result is all diags and zero loops.
        let g = compiler.compile_source_recovering("garbled", "== 'oops\n)( &&\n");
        assert!(!g.report.diags.is_empty());
        assert!(g.loops.is_empty());
        assert!(g.rp.program.units.is_empty());
    }
}

//! Cooperative cancellation for compiles.
//!
//! A [`CancelToken`] is a cheap, cloneable handle carrying an optional
//! wall-clock deadline and a manual trip wire. The compiler checks it
//! at pass checkpoints — the same places the `loop_op_budget` watchdog
//! fires — so an expired request degrades to a structured
//! partial result instead of monopolizing a worker: completed per-loop
//! reports are kept, unanalyzed loops land in the skip ledger as
//! `DeadlineExpired`, and nothing half-finished is ever cached.
//!
//! The token is *latching*: once observed cancelled (manually or by
//! deadline), every later check answers cancelled too, even if the
//! clock were to disagree. That keeps a single compile's checkpoints
//! monotonic — a loop can't be skipped for deadline while a later loop
//! proceeds because the check raced the clock edge.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cooperative cancellation handle shared between a request's owner
/// (the service) and the compile running on its behalf.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    /// Latched cancelled flag. Shared by all clones.
    flag: Arc<AtomicBool>,
    /// Wall-clock deadline; crossing it latches the flag at the next
    /// check.
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that only cancels when [`CancelToken::cancel`] is called.
    pub fn manual() -> Self {
        CancelToken::default()
    }

    /// A token that expires `budget` from now.
    pub fn deadline_in(budget: Duration) -> Self {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: Some(Instant::now() + budget),
        }
    }

    /// An already-cancelled token (deterministic: every checkpoint sees
    /// it tripped — the fuzz harness uses this to exercise cancellation
    /// identically at any thread count).
    pub fn expired() -> Self {
        let t = CancelToken::manual();
        t.cancel();
        t
    }

    /// Trips the token; every clone observes it.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// True once the token is tripped or its deadline has passed.
    /// Latching: a true answer is permanent.
    pub fn is_cancelled(&self) -> bool {
        if self.flag.load(Ordering::Relaxed) {
            return true;
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                self.flag.store(true, Ordering::SeqCst);
                return true;
            }
        }
        false
    }

    /// Time left before the deadline (`None` without one, zero when
    /// already past).
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline.map(|d| d.saturating_duration_since(Instant::now()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_token_latches_across_clones() {
        let t = CancelToken::manual();
        let c = t.clone();
        assert!(!t.is_cancelled());
        c.cancel();
        assert!(t.is_cancelled());
        assert!(c.is_cancelled());
    }

    #[test]
    fn expired_token_is_cancelled_immediately() {
        assert!(CancelToken::expired().is_cancelled());
    }

    #[test]
    fn zero_deadline_expires_at_first_check() {
        let t = CancelToken::deadline_in(Duration::ZERO);
        assert!(t.is_cancelled());
        assert_eq!(t.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn generous_deadline_is_not_cancelled_yet() {
        let t = CancelToken::deadline_in(Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        assert!(t.remaining().unwrap() > Duration::from_secs(3000));
    }
}

//! Compiler capability profiles.

use apar_analysis::Capabilities;
use apar_minifort::StmtId;

use crate::report::PassId;

/// A deliberately injected analysis panic (testing aid for the per-loop
/// sandbox). When a profile carries one, the named pass panics at its
/// boundary while analyzing the matching loop — letting tests prove
/// that exactly that loop degrades and every other report entry is
/// bit-identical. Production profiles never set this.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AnalysisFault {
    /// Pass whose boundary fires the panic.
    pub pass: PassId,
    /// Unit the faulted loop lives in.
    pub unit: String,
    /// Specific loop header; `None` faults every loop in the unit.
    pub stmt: Option<StmtId>,
}

/// Everything that bounds the compiler's precision and effort.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompilerProfile {
    /// Display name (appears in reports).
    pub name: String,
    /// Enabling techniques available to the analyses.
    pub caps: Capabilities,
    /// Symbolic-op budget per loop; exceeding it classifies the loop as
    /// `Complexity` (the paper's "reasonable compile time" bound, made
    /// deterministic).
    pub loop_op_budget: u64,
    /// Maximum call-inlining rounds inside one loop body.
    pub inline_depth: usize,
    /// Maximum statements spliced into one loop by inlining.
    pub inline_stmt_budget: usize,
    /// Emit speculative parallel annotations (runtime dependence test
    /// with rollback) for loops whose only hindrance is dynamically
    /// checkable — indirection, rangeless variables, or failed symbolic
    /// analysis. Off in both paper profiles; models the runtime
    /// techniques the paper's conclusion calls for beyond static
    /// analysis.
    pub runtime_test: bool,
    /// Worker threads for the per-loop analysis stage of the driver.
    /// Compile reports (per-pass op counts, classifications, Figure 5
    /// histograms) are bit-identical for every value; only wall time
    /// changes. 1 = fully sequential.
    pub threads: usize,
    /// Injected analysis panic for sandbox tests; `None` in production.
    pub fault: Option<AnalysisFault>,
}

impl CompilerProfile {
    /// The 2008 state of the art the paper measures.
    pub fn polaris2008() -> Self {
        CompilerProfile {
            name: "polaris2008".into(),
            caps: Capabilities::polaris2008(),
            // Calibrated so the deeply unrolled "monster" loops of the
            // industrial suites exceed it (the paper's 12-hour bound,
            // made deterministic) while ordinary loops stay far below.
            loop_op_budget: 8_000,
            inline_depth: 3,
            inline_stmt_budget: 4_000,
            runtime_test: false,
            threads: 1,
            fault: None,
        }
    }

    /// Every enabling technique on — the compiler the paper calls for.
    pub fn full() -> Self {
        CompilerProfile {
            name: "full".into(),
            caps: Capabilities::full(),
            loop_op_budget: 4_000_000,
            inline_depth: 4,
            inline_stmt_budget: 16_000,
            runtime_test: false,
            threads: 1,
            fault: None,
        }
    }

    /// This profile plus speculative runtime dependence testing: loops
    /// blocked only by indirection / rangeless variables / symbolic
    /// limits are annotated for LRPD-style parallel execution with
    /// rollback. Composes with any base profile, e.g.
    /// `CompilerProfile::polaris2008().with_runtime_test()`.
    pub fn with_runtime_test(mut self) -> Self {
        self.runtime_test = true;
        self.name = format!("{}+runtime-test", self.name);
        self
    }

    /// This profile with `n` analysis worker threads (0 is clamped to
    /// 1). The knob changes only how fast the compiler itself runs —
    /// every report it produces is bit-identical across values.
    pub fn with_threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// This profile with an injected panic at the boundary of `pass`
    /// for loops of `unit` (all of them when `stmt` is `None`). Tests
    /// the per-loop sandbox: the faulted loop must degrade to a
    /// structured skip while every other loop's report is unchanged.
    pub fn with_fault(mut self, pass: PassId, unit: &str, stmt: Option<StmtId>) -> Self {
        self.fault = Some(AnalysisFault {
            pass,
            unit: unit.to_string(),
            stmt,
        });
        self
    }

    /// Baseline with exactly one capability flipped on (ablations).
    pub fn baseline_plus(name: &str, f: impl FnOnce(&mut Capabilities)) -> Self {
        let mut p = Self::polaris2008();
        p.name = format!("polaris2008+{}", name);
        f(&mut p.caps);
        p
    }

    /// The named single-capability ablations, in a fixed order.
    pub fn ablations() -> Vec<CompilerProfile> {
        vec![
            Self::baseline_plus("noalias", |c| c.interprocedural_noalias = true),
            Self::baseline_plus("deck-ranges", |c| c.input_deck_ranges = true),
            Self::baseline_plus("indirection", |c| c.indirection_analysis = true),
            Self::baseline_plus("symbolic", |c| c.extended_symbolic = true),
            Self::baseline_plus("reshape", |c| c.reshaped_access = true),
            Self::baseline_plus("guards", |c| c.guarded_regions = true),
            Self::baseline_plus("multilingual", |c| c.multilingual = true),
        ]
    }
}

impl Default for CompilerProfile {
    fn default() -> Self {
        Self::polaris2008()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_has_everything_off() {
        let p = CompilerProfile::polaris2008();
        assert!(!p.caps.multilingual);
        assert!(!p.caps.extended_symbolic);
        assert!(p.loop_op_budget > 0);
    }

    #[test]
    fn ablations_flip_exactly_one_capability() {
        let base = Capabilities::polaris2008();
        for a in CompilerProfile::ablations() {
            let c = a.caps;
            let flips = [
                c.multilingual != base.multilingual,
                c.interprocedural_noalias != base.interprocedural_noalias,
                c.input_deck_ranges != base.input_deck_ranges,
                c.indirection_analysis != base.indirection_analysis,
                c.extended_symbolic != base.extended_symbolic,
                c.reshaped_access != base.reshaped_access,
                c.guarded_regions != base.guarded_regions,
            ]
            .iter()
            .filter(|&&b| b)
            .count();
            assert_eq!(flips, 1, "{}", a.name);
        }
    }
}

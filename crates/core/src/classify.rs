//! Per-loop classification into the paper's §3 hindrance taxonomy.

use std::collections::HashMap;

use apar_analysis::ddtest::{DdOutcome, Hindrance};
/// The Figure 5 categories, plus bookkeeping variants for loops the
/// paper's target set would exclude.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Classification {
    /// Parallelized by the compiler under the active profile.
    Autoparallelized,
    /// Blocked by assumed aliasing between names over shared storage.
    Aliasing,
    /// Blocked by variables with no known range (input-deck values).
    Rangeless,
    /// Blocked by subscripted subscripts.
    Indirection,
    /// Blocked by symbolic expressions beyond the engine.
    SymbolAnalysis,
    /// Blocked by declared/used shape mismatches across boundaries.
    AccessRepresentation,
    /// Analysis exceeded the op budget.
    Complexity,
    /// A genuine data dependence (not a target-loop category).
    RealDependence,
    /// I/O or control flow escaping the loop.
    Control,
}

impl Classification {
    /// Display label matching the figure legend.
    pub fn label(&self) -> &'static str {
        match self {
            Classification::Autoparallelized => "autoparallelized",
            Classification::Aliasing => "aliasing",
            Classification::Rangeless => "rangeless",
            Classification::Indirection => "indirection",
            Classification::SymbolAnalysis => "symbol analysis",
            Classification::AccessRepresentation => "access representation",
            Classification::Complexity => "complexity",
            Classification::RealDependence => "real dependence",
            Classification::Control => "control",
        }
    }
}

/// Derives a loop's classification from its dependence outcome and the
/// scalar verdicts. `leftover_scalars` are scalars written in the loop
/// that are neither privatizable nor reductions/inductions.
pub fn classify(
    dd: &DdOutcome,
    has_io_or_escape: bool,
    leftover_scalars: usize,
    deps_dismissed_by_privatization: &dyn Fn(&apar_analysis::ddtest::Dependence) -> bool,
) -> Classification {
    if has_io_or_escape {
        return Classification::Control;
    }
    if dd.budget_exceeded {
        return Classification::Complexity;
    }
    let mut counts: HashMap<Hindrance, usize> = HashMap::new();
    for d in &dd.dependences {
        if deps_dismissed_by_privatization(d) {
            continue;
        }
        *counts.entry(d.why).or_insert(0) += 1;
    }
    if counts.is_empty() && leftover_scalars == 0 {
        return Classification::Autoparallelized;
    }
    // Priority-ordered: the category names the *primary* missing
    // technique, as the paper's manual categorization does. `Real`
    // dependences dominate only when nothing else blocks.
    let priority = [
        Hindrance::Complexity,
        Hindrance::Aliasing,
        Hindrance::Indirection,
        Hindrance::Rangeless,
        Hindrance::AccessRepresentation,
        Hindrance::CallOpaque,
        Hindrance::SymbolAnalysis,
    ];
    let chosen: Option<Hindrance> = priority
        .iter()
        .find(|h| counts.contains_key(h))
        .copied();
    match chosen {
        Some(Hindrance::Indirection) => Classification::Indirection,
        Some(Hindrance::Aliasing) => Classification::Aliasing,
        Some(Hindrance::Rangeless) => Classification::Rangeless,
        Some(Hindrance::AccessRepresentation) | Some(Hindrance::CallOpaque) => {
            Classification::AccessRepresentation
        }
        Some(Hindrance::SymbolAnalysis) => Classification::SymbolAnalysis,
        Some(Hindrance::Complexity) => Classification::Complexity,
        _ => {
            if counts.contains_key(&Hindrance::Real) || leftover_scalars > 0 {
                Classification::RealDependence
            } else {
                Classification::Autoparallelized
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apar_analysis::ddtest::{Dependence, DependenceKind};
    use apar_minifort::StmtId;

    fn dep(why: Hindrance) -> Dependence {
        Dependence {
            array: "A".into(),
            src: StmtId(0),
            dst: StmtId(1),
            kind: DependenceKind::Flow,
            why,
        }
    }

    fn outcome(deps: Vec<Dependence>) -> DdOutcome {
        DdOutcome {
            independent: deps.is_empty(),
            dependences: deps,
            pairs_tested: 1,
            budget_exceeded: false,
        }
    }

    #[test]
    fn empty_is_autoparallelized() {
        let c = classify(&outcome(vec![]), false, 0, &|_| false);
        assert_eq!(c, Classification::Autoparallelized);
    }

    #[test]
    fn io_wins_over_everything() {
        let c = classify(&outcome(vec![dep(Hindrance::Aliasing)]), true, 0, &|_| false);
        assert_eq!(c, Classification::Control);
    }

    #[test]
    fn budget_gives_complexity() {
        let mut o = outcome(vec![]);
        o.budget_exceeded = true;
        assert_eq!(classify(&o, false, 0, &|_| false), Classification::Complexity);
    }

    #[test]
    fn priority_order_names_primary_technique() {
        let o = outcome(vec![
            dep(Hindrance::SymbolAnalysis),
            dep(Hindrance::Rangeless),
            dep(Hindrance::SymbolAnalysis),
        ]);
        assert_eq!(classify(&o, false, 0, &|_| false), Classification::Rangeless);
    }

    #[test]
    fn priority_breaks_ties() {
        let o = outcome(vec![dep(Hindrance::Aliasing), dep(Hindrance::SymbolAnalysis)]);
        assert_eq!(classify(&o, false, 0, &|_| false), Classification::Aliasing);
    }

    #[test]
    fn privatization_dismissal_recovers_parallelism() {
        let o = outcome(vec![dep(Hindrance::Real)]);
        let c = classify(&o, false, 0, &|d| d.array == "A");
        assert_eq!(c, Classification::Autoparallelized);
    }

    #[test]
    fn leftover_scalars_are_real_dependences() {
        let c = classify(&outcome(vec![]), false, 1, &|_| false);
        assert_eq!(c, Classification::RealDependence);
    }

    #[test]
    fn call_opaque_maps_to_access_representation() {
        let o = outcome(vec![dep(Hindrance::CallOpaque)]);
        assert_eq!(
            classify(&o, false, 0, &|_| false),
            Classification::AccessRepresentation
        );
    }
}

//! Minimal JSON output for artifacts.
//!
//! The offline workspace has no serde; artifacts are small and their
//! shapes are fixed, so a hand-rolled value tree is enough. Rendering
//! is pretty-printed with two-space indentation to keep the artifact
//! files diffable, matching what `serde_json::to_string_pretty` used to
//! produce for these structs.
//!
//! This lives in `apar-core` so every downstream crate that writes an
//! artifact (`apar-bench`, `apar-service`) shares one renderer instead
//! of growing private dialects.

use crate::nesting::NestingAverages;

/// A JSON value.
#[derive(Clone, Debug)]
pub enum Json {
    Bool(bool),
    Int(i64),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(&'static str, Json)>),
}

impl Json {
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    /// Single-line rendering for line-delimited protocols (the daemon's
    /// responses must each be exactly one line).
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Arr(items) => {
                out.push('[');
                for (i, it) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    it.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("\"{}\":", k));
                    v.write_compact(out);
                }
                out.push('}');
            }
            scalar => scalar.write(out, 0),
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = |n: usize| "  ".repeat(n);
        match self {
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Num(v) => {
                if !v.is_finite() {
                    out.push_str("null");
                } else if v.fract() == 0.0 && v.abs() < 1e15 {
                    // Keep a decimal point so the value reads back as float.
                    out.push_str(&format!("{:.1}", v));
                } else {
                    out.push_str(&format!("{}", v));
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, it) in items.iter().enumerate() {
                    out.push_str(&pad(indent + 1));
                    it.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad(indent));
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(&pad(indent + 1));
                    out.push_str(&format!("\"{}\": ", k));
                    v.write(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad(indent));
                out.push('}');
            }
        }
    }
}

/// Conversion into a [`Json`] value tree.
pub trait ToJson {
    fn to_json(&self) -> Json;
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::Int(*self as i64)
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::Int(*self as i64)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl ToJson for NestingAverages {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("outer_subs", self.outer_subs.to_json()),
            ("outer_loops", self.outer_loops.to_json()),
            ("enclosed_subs", self.enclosed_subs.to_json()),
            ("enclosed_loops", self.enclosed_loops.to_json()),
            ("n", self.n.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structure() {
        let v = Json::Obj(vec![
            ("name", Json::Str("a \"b\"".into())),
            ("xs", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            ("f", Json::Num(1.5)),
            ("empty", Json::Arr(vec![])),
        ]);
        let s = v.render();
        assert!(s.contains("\"a \\\"b\\\"\""), "{}", s);
        assert!(s.contains("\"f\": 1.5"), "{}", s);
        assert!(s.contains("\"empty\": []"), "{}", s);
    }

    #[test]
    fn whole_floats_keep_a_decimal_point() {
        assert_eq!(Json::Num(2.0).render(), "2.0");
        assert_eq!(Json::Num(2.5).render(), "2.5");
        assert_eq!(Json::Int(2).render(), "2");
    }
}

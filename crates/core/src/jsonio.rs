//! Minimal JSON output for artifacts.
//!
//! The offline workspace has no serde; artifacts are small and their
//! shapes are fixed, so a hand-rolled value tree is enough. Rendering
//! is pretty-printed with two-space indentation to keep the artifact
//! files diffable, matching what `serde_json::to_string_pretty` used to
//! produce for these structs.
//!
//! This lives in `apar-core` so every downstream crate that writes an
//! artifact (`apar-bench`, `apar-service`) shares one renderer instead
//! of growing private dialects.

use crate::nesting::NestingAverages;

/// A JSON value.
#[derive(Clone, Debug)]
pub enum Json {
    Bool(bool),
    Int(i64),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(&'static str, Json)>),
}

impl Json {
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    /// Single-line rendering for line-delimited protocols (the daemon's
    /// responses must each be exactly one line).
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Arr(items) => {
                out.push('[');
                for (i, it) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    it.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("\"{}\":", k));
                    v.write_compact(out);
                }
                out.push('}');
            }
            scalar => scalar.write(out, 0),
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = |n: usize| "  ".repeat(n);
        match self {
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Num(v) => {
                if !v.is_finite() {
                    out.push_str("null");
                } else if v.fract() == 0.0 && v.abs() < 1e15 {
                    // Keep a decimal point so the value reads back as float.
                    out.push_str(&format!("{:.1}", v));
                } else {
                    out.push_str(&format!("{}", v));
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, it) in items.iter().enumerate() {
                    out.push_str(&pad(indent + 1));
                    it.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad(indent));
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(&pad(indent + 1));
                    out.push_str(&format!("\"{}\": ", k));
                    v.write(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad(indent));
                out.push('}');
            }
        }
    }
}

/// Conversion into a [`Json`] value tree.
pub trait ToJson {
    fn to_json(&self) -> Json;
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::Int(*self as i64)
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::Int(*self as i64)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl ToJson for NestingAverages {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("outer_subs", self.outer_subs.to_json()),
            ("outer_loops", self.outer_loops.to_json()),
            ("enclosed_subs", self.enclosed_subs.to_json()),
            ("enclosed_loops", self.enclosed_loops.to_json()),
            ("n", self.n.to_json()),
        ])
    }
}

/// A parsed JSON value.
///
/// The render-side [`Json`] uses `&'static str` object keys because
/// artifact shapes are fixed at compile time; parsed documents arrive
/// from disk (the persistent store's record log) and must own their
/// strings. Duplicate keys are kept in arrival order; [`JVal::get`]
/// returns the first.
#[derive(Clone, Debug, PartialEq)]
pub enum JVal {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JVal>),
    Obj(Vec<(String, JVal)>),
}

impl JVal {
    /// First value under `key` when this is an object.
    pub fn get(&self, key: &str) -> Option<&JVal> {
        match self {
            JVal::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JVal::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JVal::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Integer view. Accepts exact integral numbers and — because f64
    /// cannot carry a full 64-bit hash — decimal strings, which is how
    /// the store serializes `u64` keys.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JVal::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 9.0e15 => Some(*n as u64),
            JVal::Str(s) => s.parse().ok(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JVal::Num(n) if n.fract() == 0.0 && n.abs() <= 9.0e15 => Some(*n as i64),
            JVal::Str(s) => s.parse().ok(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JVal::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[JVal]> {
        match self {
            JVal::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// `get` + `as_str` in one step.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(JVal::as_str)
    }

    /// `get` + `as_u64` in one step.
    pub fn u64_field(&self, key: &str) -> Option<u64> {
        self.get(key).and_then(JVal::as_u64)
    }
}

/// Parses a JSON document. Total over arbitrary input: malformed text,
/// truncation at any byte, and pathological nesting all return `None`
/// (nesting deeper than an internal limit is rejected rather than
/// recursed into, so hostile input cannot overflow the stack). Trailing
/// non-whitespace after the document is an error.
pub fn parse(text: &str) -> Option<JVal> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos == p.bytes.len() {
        Some(v)
    } else {
        None
    }
}

const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn lit(&mut self, word: &[u8], v: JVal) -> Option<JVal> {
        if self.bytes[self.pos..].starts_with(word) {
            self.pos += word.len();
            Some(v)
        } else {
            None
        }
    }

    fn value(&mut self, depth: usize) -> Option<JVal> {
        if depth > MAX_DEPTH {
            return None;
        }
        self.skip_ws();
        match self.bytes.get(self.pos)? {
            b'n' => self.lit(b"null", JVal::Null),
            b't' => self.lit(b"true", JVal::Bool(true)),
            b'f' => self.lit(b"false", JVal::Bool(false)),
            b'"' => self.string().map(JVal::Str),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.eat(b']') {
                    return Some(JVal::Arr(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    if self.eat(b']') {
                        return Some(JVal::Arr(items));
                    }
                    if !self.eat(b',') {
                        return None;
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.eat(b'}') {
                    return Some(JVal::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    if !self.eat(b':') {
                        return None;
                    }
                    fields.push((key, self.value(depth + 1)?));
                    self.skip_ws();
                    if self.eat(b'}') {
                        return Some(JVal::Obj(fields));
                    }
                    if !self.eat(b',') {
                        return None;
                    }
                }
            }
            b'-' | b'0'..=b'9' => self.number(),
            _ => None,
        }
    }

    fn number(&mut self) -> Option<JVal> {
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).ok()?;
        let n: f64 = text.parse().ok()?;
        if n.is_finite() {
            Some(JVal::Num(n))
        } else {
            None
        }
    }

    fn string(&mut self) -> Option<String> {
        if !self.eat(b'"') {
            return None;
        }
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos)? {
                b'"' => {
                    self.pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.bytes.get(self.pos)? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self.bytes.get(self.pos + 1..self.pos + 5)?;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            // Surrogate halves cannot become chars; the
                            // renderer never emits them, so a lone one is
                            // treated as corruption.
                            out.push(char::from_u32(code)?);
                            self.pos += 4;
                        }
                        _ => return None,
                    }
                    self.pos += 1;
                }
                // Multi-byte UTF-8: copy the whole scalar. `bytes` came
                // from a &str, so slicing at a char boundary is safe to
                // probe with from_utf8 on the remainder.
                &b => {
                    if b < 0x80 {
                        if b < 0x20 {
                            return None; // raw control char: corruption
                        }
                        out.push(b as char);
                        self.pos += 1;
                    } else {
                        let rest = std::str::from_utf8(&self.bytes[self.pos..]).ok()?;
                        let c = rest.chars().next()?;
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }
    }
}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `bytes`.
/// Hand-rolled like the rest of the serialization layer — the store's
/// record framing needs an error-detecting checksum without deps.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structure() {
        let v = Json::Obj(vec![
            ("name", Json::Str("a \"b\"".into())),
            ("xs", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            ("f", Json::Num(1.5)),
            ("empty", Json::Arr(vec![])),
        ]);
        let s = v.render();
        assert!(s.contains("\"a \\\"b\\\"\""), "{}", s);
        assert!(s.contains("\"f\": 1.5"), "{}", s);
        assert!(s.contains("\"empty\": []"), "{}", s);
    }

    #[test]
    fn whole_floats_keep_a_decimal_point() {
        assert_eq!(Json::Num(2.0).render(), "2.0");
        assert_eq!(Json::Num(2.5).render(), "2.5");
        assert_eq!(Json::Int(2).render(), "2");
    }

    #[test]
    fn parse_round_trips_rendered_output() {
        let v = Json::Obj(vec![
            ("name", Json::Str("a \"b\"\n\t\u{1}ß".into())),
            ("xs", Json::Arr(vec![Json::Int(1), Json::Int(-2)])),
            ("f", Json::Num(1.5)),
            ("flag", Json::Bool(true)),
            ("empty", Json::Obj(vec![])),
        ]);
        for text in [v.render(), v.render_compact()] {
            let p = parse(&text).expect("parse back");
            assert_eq!(p.str_field("name"), Some("a \"b\"\n\t\u{1}ß"));
            assert_eq!(p.get("xs").and_then(JVal::as_arr).map(<[JVal]>::len), Some(2));
            assert_eq!(p.get("xs").and_then(|a| a.as_arr()?.get(1)?.as_i64()), Some(-2));
            assert_eq!(p.get("f").and_then(JVal::as_f64), Some(1.5));
            assert_eq!(p.get("flag").and_then(JVal::as_bool), Some(true));
            assert_eq!(p.get("empty"), Some(&JVal::Obj(vec![])));
        }
    }

    #[test]
    fn u64_keys_round_trip_through_strings() {
        let key = u64::MAX - 3;
        let text = Json::Obj(vec![("k", Json::Str(key.to_string()))]).render_compact();
        assert_eq!(parse(&text).and_then(|p| p.u64_field("k")), Some(key));
    }

    #[test]
    fn parse_is_total_over_hostile_input() {
        let cases = [
            "", "{", "}", "[", "[1,", "{\"a\":}", "{\"a\"1}", "\"\\u12", "\"\\ud800\"",
            "truthy", "nul", "1e999", "--3", "{\"a\":1}extra", "\"\u{7f}ok", "[1 2]",
        ];
        for c in cases {
            assert_eq!(parse(c), None, "input {:?} must be rejected, not panic", c);
        }
        // Every prefix of a valid document either parses or returns None.
        let doc = Json::Obj(vec![("xs", Json::Arr(vec![Json::Int(7), Json::Str("s".into())]))])
            .render_compact();
        for i in 0..doc.len() {
            let _ = parse(&doc[..i]);
        }
    }

    #[test]
    fn parse_rejects_pathological_nesting() {
        let deep = "[".repeat(10_000);
        assert_eq!(parse(&deep), None);
        let ok = format!("{}{}", "[".repeat(20), "]".repeat(20));
        assert!(parse(&ok).is_some());
    }

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
    }
}

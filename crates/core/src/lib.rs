//! The autopar parallelizing compiler — the reproduction's counterpart
//! of Polaris.
//!
//! [`pipeline::Compiler`] drives the full pass sequence of Figure 2 —
//! GSA translation, interprocedural constant propagation, induction
//! variable substitution, inline expansion, data-dependence testing
//! (Range Test + GCD), array/scalar privatization, and reduction
//! recognition — over a MiniFort program, recording wall time *and*
//! deterministic symbolic-op counts per pass.
//!
//! Two artifacts drive the paper's experiments:
//!
//! * a [`report::CompileReport`] with per-pass timings (Figures 2/3),
//!   per-loop [`classify::Classification`]s (Figure 5), and nesting
//!   metrics for target loops (Figure 4);
//! * the transformed program itself, with `auto_par` annotations on the
//!   loops the compiler parallelized — executable by `apar-runtime` to
//!   produce the "Polaris" bars of Figure 1.
//!
//! The compiler's precision frontier is set by a
//! [`profile::CompilerProfile`]: [`profile::CompilerProfile::polaris2008`]
//! reproduces the paper's baseline; individual capability flags serve as
//! ablations for the "missing enabling techniques" of §3.

pub mod cancel;
pub mod classify;
pub mod jsonio;
pub mod nesting;
pub mod pipeline;
pub mod profile;
pub mod report;

pub use cancel::CancelToken;
pub use classify::Classification;
pub use pipeline::{CompileResult, Compiler, EmitResult, LoopReport, SplicedLoop};
pub use profile::CompilerProfile;
pub use report::{CompileReport, DegradeTier, PassId};

pub use apar_analysis::Capabilities;

//! Figure 4: nesting metrics of the hand-identified target loops.

use apar_analysis::callgraph::CallGraph;
use apar_analysis::loops::{LoopForest, NestingMetrics};
use apar_minifort::ResolvedProgram;
/// Metrics for one target loop.
#[derive(Clone, Debug)]
pub struct TargetNesting {
    pub target: String,
    pub unit: String,
    pub outer_subs: usize,
    pub outer_loops: usize,
    pub enclosed_subs: usize,
    pub enclosed_loops: usize,
}

/// Averages across a suite — the four bars of Figure 4.
#[derive(Clone, Copy, Debug, Default)]
pub struct NestingAverages {
    pub outer_subs: f64,
    pub outer_loops: f64,
    pub enclosed_subs: f64,
    pub enclosed_loops: f64,
    pub n: usize,
}

/// Computes nesting metrics for every `!$TARGET` loop.
pub fn target_nesting(rp: &ResolvedProgram) -> Vec<TargetNesting> {
    let cg = CallGraph::build(rp);
    let forest = LoopForest::build(rp);
    forest
        .targets()
        .map(|info| {
            let m = NestingMetrics::compute(rp, &cg, &forest, info);
            TargetNesting {
                target: info.target.clone().unwrap_or_default(),
                unit: info.id.unit.clone(),
                outer_subs: m.outer_subs,
                outer_loops: m.outer_loops,
                enclosed_subs: m.enclosed_subs,
                enclosed_loops: m.enclosed_loops,
            }
        })
        .collect()
}

/// Averages the per-loop metrics.
pub fn averages(rows: &[TargetNesting]) -> NestingAverages {
    if rows.is_empty() {
        return NestingAverages::default();
    }
    let n = rows.len() as f64;
    NestingAverages {
        outer_subs: rows.iter().map(|r| r.outer_subs as f64).sum::<f64>() / n,
        outer_loops: rows.iter().map(|r| r.outer_loops as f64).sum::<f64>() / n,
        enclosed_subs: rows.iter().map(|r| r.enclosed_subs as f64).sum::<f64>() / n,
        enclosed_loops: rows.iter().map(|r| r.enclosed_loops as f64).sum::<f64>() / n,
        n: rows.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apar_minifort::frontend;

    #[test]
    fn averages_of_framework_code() {
        let rp = frontend(
            "PROGRAM MAIN\nCALL DRIVER\nEND\n\
             SUBROUTINE DRIVER\nDO IT = 1, 4\nCALL MODA\nENDDO\nEND\n\
             SUBROUTINE MODA\n!$TARGET A1\nDO I = 1, 10\nX = 1.0\nENDDO\n!$TARGET A2\nDO J = 1, 10\nY = 2.0\nENDDO\nEND\n",
        )
        .expect("frontend");
        let rows = target_nesting(&rp);
        assert_eq!(rows.len(), 2);
        let avg = averages(&rows);
        assert_eq!(avg.n, 2);
        assert!((avg.outer_subs - 2.0).abs() < 1e-9);
        assert!((avg.outer_loops - 1.0).abs() < 1e-9);
        assert_eq!(avg.enclosed_subs, 0.0);
    }

    #[test]
    fn empty_suite_is_zeroes() {
        let avg = averages(&[]);
        assert_eq!(avg.n, 0);
        assert_eq!(avg.outer_subs, 0.0);
    }
}

//! Compile reports: the data behind Figures 2 and 3.

use std::collections::HashMap;
use std::time::Duration;

use apar_minifort::{Diag, StmtId};

/// The compiler passes of Figure 2's legend.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PassId {
    DataDependence,
    Privatization,
    InductionSubstitution,
    InlineExpansion,
    GsaTranslation,
    InterproceduralConstProp,
    Reduction,
    Others,
}

impl PassId {
    /// Every pass, in the figure's legend order.
    pub const ALL: [PassId; 8] = [
        PassId::DataDependence,
        PassId::Privatization,
        PassId::InductionSubstitution,
        PassId::InlineExpansion,
        PassId::GsaTranslation,
        PassId::InterproceduralConstProp,
        PassId::Reduction,
        PassId::Others,
    ];

    pub fn label(&self) -> &'static str {
        match self {
            PassId::DataDependence => "data-dependence test",
            PassId::Privatization => "privatization",
            PassId::InductionSubstitution => "induction variable substitution",
            PassId::InlineExpansion => "inline expansion",
            PassId::GsaTranslation => "GSA translation",
            PassId::InterproceduralConstProp => "interprocedural constant propagation",
            PassId::Reduction => "reduction",
            PassId::Others => "others",
        }
    }
}

/// Wall time and deterministic op count of one pass.
#[derive(Clone, Copy, Debug, Default)]
pub struct PassCost {
    pub seconds: f64,
    pub ops: u64,
}

/// How much of the pipeline a compile was asked to run. Under overload
/// or deadline pressure the service degrades work rather than queueing
/// it unboundedly: `Full` is the normal pipeline, `FactsOnly` answers
/// per-loop analysis only from already-cached interprocedural facts
/// (never builds new ones), and `ParseOnly` stops after the recovering
/// front end (parse + diagnose, every loop ledgered as skipped).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum DegradeTier {
    /// The full analysis pipeline.
    #[default]
    Full,
    /// Per-loop analysis may only *adopt* cached facts; a facts miss
    /// skips the loop instead of building.
    FactsOnly,
    /// Front end only: parse, diagnose, count loops; no analysis.
    ParseOnly,
}

impl DegradeTier {
    pub fn label(&self) -> &'static str {
        match self {
            DegradeTier::Full => "full",
            DegradeTier::FactsOnly => "facts-only",
            DegradeTier::ParseOnly => "parse-only",
        }
    }
}

/// Why the per-loop analysis stage could not analyze a loop. These are
/// hindrances in their own right: a skipped loop stays serial, so it
/// must stay visible in the report rather than silently vanishing from
/// the Figure 5 accounting.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum SkipReason {
    /// The loop lives in a `!LANG C` unit and the profile lacks the
    /// multilingual capability (§2.4): the compiler cannot see inside.
    ForeignLanguage,
    /// The loop's unit was not found in the resolved program.
    UnitMissing,
    /// Inlining removed the loop's unit from the analyzed copy (fully
    /// inlined away): its loops are no longer candidates.
    InlinedAway,
    /// The loop header could not be located in the analyzed program.
    HeaderMissing,
    /// An analysis pass panicked while working on this loop. The panic
    /// was contained by the per-loop sandbox: only this loop degrades
    /// (to serial, `Complexity` for target accounting) and the rest of
    /// the compile proceeds untouched.
    InternalError {
        /// The pass that was running when the panic fired.
        pass: PassId,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The analysis proved the loop parallel but the codegen backend
    /// could not emit a runnable directive for it (escaping control
    /// flow, assumed-size private array, non-scalar reduction); the
    /// loop was emitted serial with the detail as its reason comment.
    /// Recorded by `compile_and_emit`, never by plain `compile`.
    NotEmittable {
        /// Which runtime restriction blocked the directive.
        detail: String,
    },
    /// The request's wall-clock deadline expired before this loop was
    /// analyzed. The compile degraded cooperatively: completed loops
    /// kept their reports, the rest landed here.
    DeadlineExpired,
    /// The compile ran at a degraded tier that does not perform the
    /// analysis this loop would have needed (facts-only tier with a
    /// facts miss, or the parse-only tier).
    Degraded {
        /// The tier that was in force.
        tier: DegradeTier,
    },
    /// The loop's unit facts are quarantined in the shared store: the
    /// build crash-looped or budget-tripped repeatedly, so analysis is
    /// refused until the quarantine's backoff expires.
    Quarantined,
}

impl SkipReason {
    pub fn label(&self) -> &'static str {
        match self {
            SkipReason::ForeignLanguage => "foreign language",
            SkipReason::UnitMissing => "unit missing",
            SkipReason::InlinedAway => "inlined away",
            SkipReason::HeaderMissing => "header missing",
            SkipReason::InternalError { .. } => "internal error",
            SkipReason::NotEmittable { .. } => "not emittable",
            SkipReason::DeadlineExpired => "deadline expired",
            SkipReason::Degraded { .. } => "degraded",
            SkipReason::Quarantined => "quarantined",
        }
    }
}

/// A loop the per-loop stage skipped, with its provenance, so reports
/// account for every loop the forest discovered.
#[derive(Clone, Debug)]
pub struct SkippedLoop {
    pub unit: String,
    pub stmt: StmtId,
    /// `!$TARGET` marker, when the skipped loop was a target loop.
    pub target: Option<String>,
    pub reason: SkipReason,
}

/// Aggregate compile-time report for one application.
#[derive(Clone, Debug, Default)]
pub struct CompileReport {
    pub app: String,
    pub profile: String,
    /// Executable statement count (Figure 2's denominator).
    pub statements: usize,
    pub units: usize,
    pub loops: usize,
    pub target_loops: usize,
    pub per_pass: HashMap<PassId, PassCost>,
    /// Loops the per-loop stage could not analyze, with the reason —
    /// explicit entries instead of silent disappearance.
    pub skipped: Vec<SkippedLoop>,
    /// Frontend diagnostics recovered from (recovering mode only):
    /// garbled lines the lexer skipped, statements the parser dropped,
    /// units resolution rejected. A strict compile has none.
    pub diags: Vec<Diag>,
    /// Units the recovering frontend dropped entirely (unparsable or
    /// unresolvable). The rest of the suite compiled without them.
    pub dropped_units: Vec<String>,
    /// True when the request's deadline expired mid-compile: at least
    /// one loop was ledgered as `DeadlineExpired` instead of analyzed.
    pub deadline_expired: bool,
    /// The degraded tier this compile ran at, when not `Full`.
    pub degrade: Option<DegradeTier>,
}

impl CompileReport {
    /// Adds cost to a pass bucket.
    pub fn charge(&mut self, pass: PassId, wall: Duration, ops: u64) {
        let e = self.per_pass.entry(pass).or_default();
        e.seconds += wall.as_secs_f64();
        e.ops += ops;
    }

    /// Total compile seconds.
    pub fn total_seconds(&self) -> f64 {
        self.per_pass.values().map(|c| c.seconds).sum()
    }

    /// Total symbolic ops.
    pub fn total_ops(&self) -> u64 {
        self.per_pass.values().map(|c| c.ops).sum()
    }

    /// Seconds per executable statement (Figure 2's columns).
    pub fn seconds_per_statement(&self) -> f64 {
        if self.statements == 0 {
            0.0
        } else {
            self.total_seconds() / self.statements as f64
        }
    }

    /// Ops per executable statement (deterministic Figure 2 analog).
    pub fn ops_per_statement(&self) -> f64 {
        if self.statements == 0 {
            0.0
        } else {
            self.total_ops() as f64 / self.statements as f64
        }
    }

    /// Fraction of total ops per pass (Figure 3, deterministic form).
    pub fn ops_fractions(&self) -> Vec<(PassId, f64)> {
        let total = self.total_ops().max(1) as f64;
        PassId::ALL
            .iter()
            .map(|&p| {
                let ops = self.per_pass.get(&p).map_or(0, |c| c.ops) as f64;
                (p, ops / total)
            })
            .collect()
    }

    /// Skipped loops that carried a `!$TARGET` marker (loops Figure 5
    /// would otherwise lose from its denominator).
    pub fn skipped_targets(&self) -> impl Iterator<Item = &SkippedLoop> {
        self.skipped.iter().filter(|s| s.target.is_some())
    }

    /// Histogram of skip reasons, in first-seen order.
    pub fn skip_histogram(&self) -> Vec<(SkipReason, usize)> {
        let mut counts: Vec<(SkipReason, usize)> = Vec::new();
        for s in &self.skipped {
            match counts.iter_mut().find(|(r, _)| *r == s.reason) {
                Some((_, n)) => *n += 1,
                None => counts.push((s.reason.clone(), 1)),
            }
        }
        counts
    }

    /// Loops the panic sandbox degraded (`SkipReason::InternalError`).
    pub fn panicked_loops(&self) -> usize {
        self.skipped
            .iter()
            .filter(|s| matches!(s.reason, SkipReason::InternalError { .. }))
            .count()
    }

    /// Loops refused because their unit facts are quarantined
    /// (`SkipReason::Quarantined`).
    pub fn quarantined_loops(&self) -> usize {
        self.skipped
            .iter()
            .filter(|s| matches!(s.reason, SkipReason::Quarantined))
            .count()
    }

    /// Fraction of total seconds per pass (Figure 3 as published).
    pub fn time_fractions(&self) -> Vec<(PassId, f64)> {
        let total = self.total_seconds().max(f64::MIN_POSITIVE);
        PassId::ALL
            .iter()
            .map(|&p| {
                let s = self.per_pass.get(&p).map_or(0.0, |c| c.seconds);
                (p, s / total)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let mut r = CompileReport {
            statements: 100,
            ..Default::default()
        };
        r.charge(PassId::DataDependence, Duration::from_millis(200), 600);
        r.charge(PassId::DataDependence, Duration::from_millis(300), 400);
        r.charge(PassId::Others, Duration::from_millis(500), 0);
        assert!((r.total_seconds() - 1.0).abs() < 1e-9);
        assert_eq!(r.total_ops(), 1000);
        assert!((r.seconds_per_statement() - 0.01).abs() < 1e-12);
        assert!((r.ops_per_statement() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut r = CompileReport::default();
        r.charge(PassId::DataDependence, Duration::from_secs(3), 30);
        r.charge(PassId::Privatization, Duration::from_secs(1), 10);
        let fs = r.time_fractions();
        let sum: f64 = fs.iter().map(|(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        let fo = r.ops_fractions();
        let dd = fo
            .iter()
            .find(|(p, _)| *p == PassId::DataDependence)
            .unwrap()
            .1;
        assert!((dd - 0.75).abs() < 1e-9);
    }
}

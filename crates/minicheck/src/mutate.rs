//! Byte- and token-level source mutators.
//!
//! Takes real suite sources (SEISMIC, GAMESS, SANDER) and damages them
//! deterministically: truncation mid-statement, dropped/duplicated/
//! swapped lines, spliced noise bytes, and word-level edits. The output
//! is arbitrary text — the compiler under test must produce diagnostics,
//! never a panic, on every mutant.

use crate::Rng;

/// Applies `rounds` random mutations to `src`.
pub fn mutate(rng: &mut Rng, src: &str, rounds: usize) -> String {
    let mut s = src.to_string();
    for _ in 0..rounds.max(1) {
        s = mutate_once(rng, &s);
        if s.is_empty() {
            break;
        }
    }
    s
}

fn mutate_once(rng: &mut Rng, src: &str) -> String {
    match rng.usize_in(0, 6) {
        0 => truncate(rng, src),
        1 => drop_line(rng, src),
        2 => duplicate_line(rng, src),
        3 => swap_lines(rng, src),
        4 => splice_bytes(rng, src),
        5 => flip_char(rng, src),
        _ => drop_word(rng, src),
    }
}

/// Cuts the source at a random char boundary (keeps a nonempty prefix).
fn truncate(rng: &mut Rng, src: &str) -> String {
    let boundaries: Vec<usize> = src.char_indices().map(|(i, _)| i).collect();
    if boundaries.len() < 2 {
        return src.to_string();
    }
    let cut = boundaries[rng.usize_in(1, boundaries.len() - 1)];
    src[..cut].to_string()
}

fn lines_of(src: &str) -> Vec<&str> {
    src.lines().collect()
}

fn drop_line(rng: &mut Rng, src: &str) -> String {
    let mut ls = lines_of(src);
    if ls.len() < 2 {
        return src.to_string();
    }
    ls.remove(rng.usize_in(0, ls.len() - 1));
    ls.join("\n") + "\n"
}

fn duplicate_line(rng: &mut Rng, src: &str) -> String {
    let mut ls = lines_of(src);
    if ls.is_empty() {
        return src.to_string();
    }
    let i = rng.usize_in(0, ls.len() - 1);
    ls.insert(i, ls[i]);
    ls.join("\n") + "\n"
}

fn swap_lines(rng: &mut Rng, src: &str) -> String {
    let mut ls = lines_of(src);
    if ls.len() < 2 {
        return src.to_string();
    }
    let i = rng.usize_in(0, ls.len() - 1);
    let j = rng.usize_in(0, ls.len() - 1);
    ls.swap(i, j);
    ls.join("\n") + "\n"
}

/// Inserts a short run of hostile bytes at a random char boundary.
fn splice_bytes(rng: &mut Rng, src: &str) -> String {
    const NOISE: &[char] = &[
        '@', '#', '%', '(', ')', '=', '\'', ';', '&', '!', '\u{0}', '~',
    ];
    let boundaries: Vec<usize> = src
        .char_indices()
        .map(|(i, _)| i)
        .chain(std::iter::once(src.len()))
        .collect();
    let at = boundaries[rng.usize_in(0, boundaries.len() - 1)];
    let n = rng.usize_in(1, 6);
    let noise: String = (0..n).map(|_| *rng.choose(NOISE)).collect();
    format!("{}{}{}", &src[..at], noise, &src[at..])
}

fn flip_char(rng: &mut Rng, src: &str) -> String {
    let chars: Vec<(usize, char)> = src.char_indices().collect();
    if chars.is_empty() {
        return src.to_string();
    }
    let (at, c) = chars[rng.usize_in(0, chars.len() - 1)];
    let repl = match c {
        '(' => ')',
        ')' => '(',
        '=' => '+',
        _ => '=',
    };
    let mut s = String::with_capacity(src.len());
    s.push_str(&src[..at]);
    s.push(repl);
    s.push_str(&src[at + c.len_utf8()..]);
    s
}

/// Removes one whitespace-delimited word from a random line.
fn drop_word(rng: &mut Rng, src: &str) -> String {
    let mut ls: Vec<String> = src.lines().map(|l| l.to_string()).collect();
    if ls.is_empty() {
        return src.to_string();
    }
    let i = rng.usize_in(0, ls.len() - 1);
    let words: Vec<&str> = ls[i].split_whitespace().collect();
    if words.len() < 2 {
        return src.to_string();
    }
    let w = rng.usize_in(0, words.len() - 1);
    let kept: Vec<&str> = words
        .iter()
        .enumerate()
        .filter(|&(k, _)| k != w)
        .map(|(_, s)| *s)
        .collect();
    ls[i] = kept.join(" ");
    ls.join("\n") + "\n"
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "PROGRAM P\nREAL A(10)\nDO I = 1, 10\nA(I) = 1.0\nENDDO\nEND\n";

    #[test]
    fn mutation_is_deterministic() {
        let a = mutate(&mut Rng::new(3), SRC, 4);
        let b = mutate(&mut Rng::new(3), SRC, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn mutants_usually_differ_from_source() {
        let mut changed = 0;
        for seed in 0..40 {
            if mutate(&mut Rng::new(seed), SRC, 2) != SRC {
                changed += 1;
            }
        }
        assert!(changed > 30, "only {}/40 mutants differed", changed);
    }

    #[test]
    fn mutate_is_total_on_tiny_inputs() {
        for seed in 0..30 {
            let _ = mutate(&mut Rng::new(seed), "", 3);
            let _ = mutate(&mut Rng::new(seed), "X", 3);
            let _ = mutate(&mut Rng::new(seed), "\n", 3);
        }
    }
}

//! Dependency-free property testing.
//!
//! The container this workspace builds in has no registry access, so
//! the property tests run on this tiny harness instead of `proptest`:
//! a deterministic splitmix64 generator plus a [`forall`] driver that
//! replays failures by case index. Generators are plain functions
//! `fn(&mut Rng) -> T`; there is no shrinking — the failure report
//! carries the case seed so a failing input is reproducible by
//! construction.

use std::panic::{catch_unwind, AssertUnwindSafe};

pub mod fortgen;
pub mod mutate;

/// Deterministic splitmix64 generator.
#[derive(Clone, Debug)]
pub struct Rng(u64);

impl Rng {
    pub fn new(seed: u64) -> Rng {
        Rng(seed)
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    pub fn int_in(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "int_in: empty range {}..={}", lo, hi);
        let span = (hi - lo) as u64 + 1;
        lo + (self.next_u64() % span) as i64
    }

    /// Uniform usize in `[lo, hi]` (inclusive).
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.int_in(lo as i64, hi as i64) as usize
    }

    /// Uniform boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// True with probability `p`.
    pub fn weighted(&mut self, p: f64) -> bool {
        self.f64_unit() < p
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Picks one element of a slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.usize_in(0, items.len() - 1)]
    }

    /// A vector of `gen`-produced values, length in `[lo, hi]`.
    pub fn vec_of<T>(
        &mut self,
        lo: usize,
        hi: usize,
        mut gen: impl FnMut(&mut Rng) -> T,
    ) -> Vec<T> {
        let n = self.usize_in(lo, hi);
        (0..n).map(|_| gen(self)).collect()
    }
}

/// Base seed shared by every `forall` run; case `i` uses
/// `BASE_SEED ^ (i * GOLDEN)` so each case is independent and
/// reproducible without any global state.
pub const BASE_SEED: u64 = 0x005E_ED0F_A07A_9A12;
const GOLDEN: u64 = 0x9E3779B97F4A7C15;

/// Runs `property` for `cases` deterministic cases. On a panic inside
/// the property, reports the failing case index and seed, then
/// re-panics with that context so the test harness shows it.
pub fn forall(name: &str, cases: usize, mut property: impl FnMut(&mut Rng)) {
    for case in 0..cases {
        let seed = BASE_SEED ^ (case as u64).wrapping_mul(GOLDEN);
        let mut rng = Rng::new(seed);
        let result = catch_unwind(AssertUnwindSafe(|| property(&mut rng)));
        if let Err(payload) = result {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "<non-string panic>".to_string());
            panic!(
                "property '{}' failed at case {}/{} (seed {:#x}): {}",
                name, case, cases, seed, msg
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn int_in_stays_in_range() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            let v = r.int_in(-3, 9);
            assert!((-3..=9).contains(&v));
        }
    }

    #[test]
    fn f64_unit_stays_in_range() {
        let mut r = Rng::new(11);
        for _ in 0..1000 {
            let v = r.f64_unit();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn forall_reports_case_context() {
        let err = std::panic::catch_unwind(|| {
            forall("always_fails", 3, |_| panic!("boom"));
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("always_fails"), "{}", msg);
        assert!(msg.contains("case 0"), "{}", msg);
        assert!(msg.contains("boom"), "{}", msg);
    }

    #[test]
    fn forall_passes_quietly() {
        forall("trivial", 16, |rng| {
            let v = rng.int_in(0, 10);
            assert!(v <= 10);
        });
    }
}

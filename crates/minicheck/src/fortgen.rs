//! Random MiniFort program generator.
//!
//! Produces mostly-well-formed source text exercising the shapes the
//! compiler analyzes — nested `DO` loops over declared arrays, scalar
//! temporaries, reductions, `IF` dispatch on option scalars, `CALL`s
//! into generated subroutines, `COMMON` storage, and the occasional
//! `!$TARGET` / `!LANG C` directive. "Mostly" is deliberate: a small
//! fraction of emitted statements are garbled on purpose so the corpus
//! also exercises front-end recovery. The generator is a plain function
//! of the [`Rng`], so a seed reproduces its program byte-for-byte.

use crate::Rng;

/// Tunables for [`gen_program`].
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Subroutines to generate besides the main program.
    pub max_subroutines: usize,
    /// Maximum loop nesting depth.
    pub max_depth: usize,
    /// Statements per block bound.
    pub max_stmts: usize,
    /// Probability that any one emitted statement is deliberately
    /// garbled (tests recovery). Zero produces only valid programs.
    pub garble: f64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_subroutines: 3,
            max_depth: 3,
            max_stmts: 6,
            garble: 0.0,
        }
    }
}

struct Gen<'a> {
    rng: &'a mut Rng,
    cfg: GenConfig,
    out: String,
    /// Array names in scope (all declared with [`ARRAY_DIM`] elements).
    arrays: Vec<String>,
    /// Scalar names in scope.
    scalars: Vec<String>,
    /// Names of generated subroutines callable from later units.
    routines: Vec<String>,
    /// Loop index variables currently live, innermost last.
    indices: Vec<String>,
    next_target: usize,
}

const ARRAY_DIM: usize = 100;
const INDEX_NAMES: &[&str] = &["I", "J", "K", "L", "M", "N2"];

/// Generates one complete program from the rng.
pub fn gen_program(rng: &mut Rng, cfg: &GenConfig) -> String {
    let mut g = Gen {
        rng,
        cfg: cfg.clone(),
        out: String::new(),
        arrays: Vec::new(),
        scalars: Vec::new(),
        routines: Vec::new(),
        indices: Vec::new(),
        next_target: 0,
    };
    let nsubs = g.rng.usize_in(0, g.cfg.max_subroutines);
    // Subroutines first so the main program can call them.
    for s in 0..nsubs {
        g.subroutine(s);
    }
    g.main_program();
    g.out
}

/// Generates a deadline-adversarial "op bomb": a deep, coupled loop
/// nest over huge iteration spaces, with multi-array subscripts tied
/// across several index variables and `CALL`s that force inline
/// expansion. The shape makes per-loop analysis charge heavily, so the
/// symbolic-op watchdog (`loop_op_budget`) — and any armed deadline —
/// trips *late*, after real work, exercising every cancellation
/// checkpoint instead of just the first one. Statically bounded: an
/// undeadlined compile still finishes in milliseconds.
pub fn gen_op_bomb(rng: &mut Rng) -> String {
    let mut out = String::new();
    let nsubs = rng.usize_in(1, 2);
    for s in 0..nsubs {
        out.push_str(&format!(
            "SUBROUTINE BOMB{s}(X, K)\nREAL X({dim})\nINTEGER K\nINTEGER I\n\
             DO I = 2, {dim}\nX(I) = X(I - 1) + X(K) * 0.5\nENDDO\nEND\n",
            s = s,
            dim = ARRAY_DIM
        ));
    }
    out.push_str("PROGRAM FUZZ\n");
    out.push_str("REAL A(100), B(100), C(100), D(100)\n");
    out.push_str("REAL S, T\nINTEGER I, J, K, L, M\n");
    out.push_str("S = 0.0\nT = 1.0\n");
    let ivs = ["I", "J", "K", "L", "M"];
    let depth = rng.usize_in(4, ivs.len());
    for (d, iv) in ivs.iter().take(depth).enumerate() {
        if d == 0 && rng.weighted(0.5) {
            out.push_str("!$TARGET BOMB_OUTER\n");
        }
        // Huge trip counts: iteration-space math stays symbolic and
        // expensive without any runtime execution.
        let trips = ["100000000", "10000000", "1000000"];
        out.push_str(&format!("DO {} = 1, {}\n", iv, rng.choose(&trips)));
    }
    // A fat body: array-reference *pairs* (and so dependence-test
    // work) grow quadratically with statement count, which is what
    // pushes each enclosing loop past the op budget late rather than
    // never.
    let arrays = ["A", "B", "C", "D"];
    for _ in 0..rng.usize_in(16, 24) {
        let lhs = *rng.choose(&arrays);
        let r1 = *rng.choose(&arrays);
        let r2 = *rng.choose(&arrays);
        let (i1, i2) = (ivs[rng.usize_in(0, depth - 1)], ivs[rng.usize_in(0, depth - 1)]);
        let off = rng.int_in(1, 3);
        out.push_str(&format!(
            "{}({} + {}) = {}({} - {}) + {}({} * 2) + T\n",
            lhs, i1, i2, r1, i2, off, r2, i1
        ));
        if rng.weighted(0.4) {
            out.push_str(&format!("S = S + {}({})\n", r1, i1));
        }
    }
    for s in 0..nsubs {
        out.push_str(&format!("CALL BOMB{}(A, I + J)\n", s));
    }
    for _ in 0..depth {
        out.push_str("ENDDO\n");
    }
    out.push_str("WRITE(*,*) S\nEND\n");
    out
}

impl Gen<'_> {
    fn line(&mut self, s: &str) {
        self.out.push_str(s);
        self.out.push('\n');
    }

    fn fresh_arrays(&mut self, prefix: char, n: usize) {
        self.arrays = (0..n).map(|i| format!("{}{}", prefix, i)).collect();
    }

    fn declare(&mut self) {
        let names = self
            .arrays
            .iter()
            .map(|a| format!("{}({})", a, ARRAY_DIM))
            .collect::<Vec<_>>()
            .join(", ");
        self.line(&format!("REAL {}", names));
        self.scalars = vec!["S".to_string(), "T".to_string(), "OPT".to_string()];
        self.line("REAL S, T");
        self.line("INTEGER OPT");
        if self.rng.weighted(0.3) {
            let shared = self.arrays[0].clone();
            self.line(&format!("COMMON /SHARED/ {}", shared));
        }
    }

    fn subroutine(&mut self, idx: usize) {
        let name = format!("SUB{}", idx);
        if self.rng.weighted(0.1) {
            self.line("!LANG C");
        }
        self.line(&format!("SUBROUTINE {}(X, K)", name));
        self.line(&format!("REAL X({})", ARRAY_DIM));
        self.line("INTEGER K");
        self.arrays = vec!["X".to_string()];
        self.scalars = vec!["T".to_string()];
        self.indices.clear();
        self.block(1, self.cfg.max_depth.min(2));
        self.line("END");
        self.routines.push(name);
    }

    fn main_program(&mut self) {
        self.line("PROGRAM FUZZ");
        let narrays = self.rng.usize_in(2, 4);
        self.fresh_arrays('A', narrays);
        self.declare();
        self.line("OPT = 1");
        self.line("S = 0.0");
        self.indices.clear();
        let nstmts = self.rng.usize_in(2, self.cfg.max_stmts);
        self.block(nstmts, self.cfg.max_depth);
        self.line("WRITE(*,*) S");
        self.line("END");
    }

    /// Emits `n` statements at the current nesting depth.
    fn block(&mut self, n: usize, depth_left: usize) {
        for _ in 0..n {
            if self.cfg.garble > 0.0 && self.rng.weighted(self.cfg.garble) {
                self.garbled_stmt();
                continue;
            }
            let roll = self.rng.usize_in(0, 9);
            match roll {
                0..=3 if depth_left > 0 => self.do_loop(depth_left),
                4..=6 => self.assign(),
                7 => self.if_stmt(depth_left),
                8 if !self.routines.is_empty() => self.call(),
                _ => self.assign(),
            }
        }
    }

    fn do_loop(&mut self, depth_left: usize) {
        let iv = INDEX_NAMES[self.indices.len() % INDEX_NAMES.len()].to_string();
        if self.rng.weighted(0.25) {
            self.next_target += 1;
            let t = format!("FZ_{:03}", self.next_target);
            self.line(&format!("!$TARGET {}", t));
        }
        let lo = self.rng.int_in(1, 3);
        self.line(&format!("DO {} = {}, {}", iv, lo, ARRAY_DIM));
        self.indices.push(iv);
        let inner = self.rng.usize_in(1, self.cfg.max_stmts.min(4));
        self.block(inner, depth_left - 1);
        self.indices.pop();
        self.line("ENDDO");
    }

    fn subscript(&mut self) -> String {
        match self.indices.last() {
            None => self.rng.int_in(1, ARRAY_DIM as i64).to_string(),
            Some(iv) => {
                let iv = iv.clone();
                match self.rng.usize_in(0, 3) {
                    0 => iv,
                    1 => format!("{} + {}", iv, self.rng.int_in(1, 3)),
                    2 => format!("{} - {}", iv, self.rng.int_in(1, 2)),
                    _ => format!("{} * 2", iv),
                }
            }
        }
    }

    fn rvalue(&mut self) -> String {
        let arr = self.rng.choose(&self.arrays).clone();
        let sub = self.subscript();
        match self.rng.usize_in(0, 3) {
            0 => format!("{}({})", arr, sub),
            1 => format!("{}({}) + 1.0", arr, sub),
            2 => format!("{}({}) * 0.5", arr, sub),
            _ => format!("{}({}) + T", arr, sub),
        }
    }

    fn assign(&mut self) {
        let roll = self.rng.usize_in(0, 5);
        let rhs = self.rvalue();
        match roll {
            // Reduction on S.
            0 if !self.indices.is_empty() => self.line(&format!("S = S + {}", rhs)),
            // Scalar temporary (privatizable).
            1 => self.line(&format!("T = {}", rhs)),
            _ => {
                let lhs_arr = self.rng.choose(&self.arrays).clone();
                let lhs_sub = self.subscript();
                self.line(&format!("{}({}) = {}", lhs_arr, lhs_sub, rhs));
            }
        }
    }

    fn if_stmt(&mut self, depth_left: usize) {
        let cond = match self.rng.usize_in(0, 2) {
            0 => "OPT .EQ. 1".to_string(),
            1 => format!("T .GT. {}.0", self.rng.int_in(0, 9)),
            _ => match self.indices.last() {
                Some(iv) => format!("{} .LT. {}", iv, ARRAY_DIM / 2),
                None => "OPT .NE. 0".to_string(),
            },
        };
        self.line(&format!("IF ({}) THEN", cond));
        self.block(1, depth_left.saturating_sub(1));
        if self.rng.weighted(0.4) {
            self.line("ELSE");
            self.block(1, depth_left.saturating_sub(1));
        }
        self.line("ENDIF");
    }

    fn call(&mut self) {
        let r = self.rng.choose(&self.routines).clone();
        let arr = self.rng.choose(&self.arrays).clone();
        let sub = self.subscript();
        // Second argument is an integer expression; reuse the subscript.
        self.line(&format!("CALL {}({}, {})", r, arr, sub));
    }

    fn garbled_stmt(&mut self) {
        let junk = [
            "X = = 1",
            "DO = ,",
            "A(1 = 2.0",
            "CALL",
            "IF (THEN",
            "'unterminated",
            ")( = @",
        ];
        let j = *self.rng.choose(&junk);
        self.line(j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        let cfg = GenConfig::default();
        let a = gen_program(&mut Rng::new(7), &cfg);
        let b = gen_program(&mut Rng::new(7), &cfg);
        assert_eq!(a, b);
        let c = gen_program(&mut Rng::new(8), &cfg);
        assert_ne!(a, c);
    }

    #[test]
    fn generated_programs_have_structure() {
        let cfg = GenConfig::default();
        let mut loops = 0;
        for seed in 0..50 {
            let src = gen_program(&mut Rng::new(seed), &cfg);
            assert!(src.contains("PROGRAM FUZZ"));
            assert!(src.trim_end().ends_with("END"));
            loops += src.matches("ENDDO").count();
        }
        assert!(loops > 20, "corpus should be loop-rich, got {}", loops);
    }

    #[test]
    fn op_bomb_is_deterministic_and_deeply_nested() {
        let a = gen_op_bomb(&mut Rng::new(11));
        let b = gen_op_bomb(&mut Rng::new(11));
        assert_eq!(a, b);
        assert!(a.contains("PROGRAM FUZZ"));
        assert!(a.contains("CALL BOMB0"), "inlining pressure present:\n{}", a);
        let depth = a
            .lines()
            .filter(|l| l.starts_with("DO ") && l.contains("000000"))
            .count();
        assert!(depth >= 4, "main nest is deep, got {}:\n{}", depth, a);
        assert!(
            a.contains("100000000") || a.contains("10000000") || a.contains("1000000"),
            "huge trip counts:\n{}",
            a
        );
    }

    #[test]
    fn garble_rate_zero_emits_no_junk() {
        let cfg = GenConfig::default();
        for seed in 0..20 {
            let src = gen_program(&mut Rng::new(seed), &cfg);
            assert!(
                !src.contains("= ="),
                "unexpected junk in clean mode:\n{}",
                src
            );
        }
    }
}

//! Radix-2 complex FFT and the 3-D transform — the native counterpart
//! of the M3FK module (identical algorithm: doubling bit-reversal
//! table, involution swap pass, recurrence twiddles), so interpreted and
//! native spectra agree bit-for-bit-ish.

use crate::{par_rows, SeisParams, Strategy};

/// In-place complex FFT over `r` = `[re0, im0, re1, im1, ...]`, length
/// `2 * n`, `n` a power of two. Sign convention matches CFFT1.
pub fn cfft1(r: &mut [f64], n: usize) {
    assert!(n.is_power_of_two(), "radix-2 FFT needs a power of two");
    assert!(r.len() >= 2 * n);
    // Bit-reversal table by doubling.
    let mut ibr = vec![0usize; n];
    let mut nbr = 1;
    while nbr < n {
        for k in 0..nbr {
            ibr[k] *= 2;
            ibr[k + nbr] = ibr[k] + 1;
        }
        nbr *= 2;
    }
    // Involution swap pass.
    for i in 1..=n {
        let j = ibr[i - 1] + 1;
        if j > i {
            r.swap(2 * j - 2, 2 * i - 2);
            r.swap(2 * j - 1, 2 * i - 1);
        }
    }
    // Butterfly stages with recurrence twiddles.
    let mut le2 = 1usize;
    while le2 < n {
        let le = le2 * 2;
        let ang = -std::f64::consts::PI / le2 as f64;
        let (wpr, wpi) = (ang.cos(), ang.sin());
        let ngrp = n / le;
        for igrp in 0..ngrp {
            let i0 = igrp * le;
            let (mut wr, mut wi) = (1.0f64, 0.0f64);
            for k in 1..=le2 {
                let i1 = i0 + k;
                let i2 = i1 + le2;
                let tr = wr * r[2 * i2 - 2] - wi * r[2 * i2 - 1];
                let ti = wr * r[2 * i2 - 1] + wi * r[2 * i2 - 2];
                r[2 * i2 - 2] = r[2 * i1 - 2] - tr;
                r[2 * i2 - 1] = r[2 * i1 - 1] - ti;
                r[2 * i1 - 2] += tr;
                r[2 * i1 - 1] += ti;
                let tw = wr;
                wr = tw * wpr - wi * wpi;
                wi = tw * wpi + wi * wpr;
            }
        }
        le2 = le;
    }
}

/// The M3FK pipeline: synthesize the complex grid, transform along T for
/// every (x, y) column, then along X for every (y, t) pencil, then scale
/// by 1/NT — identical to the MiniFort module.
pub fn m3fk(p: &SeisParams, strategy: Strategy) -> Vec<f64> {
    let (nx, ny, nt) = (p.nx, p.ny, p.nt);
    let ncol = nx * ny;
    let mut ra = vec![0.0; 2 * ncol * nt];
    // Grid synthesis + T transforms (column-parallel).
    par_rows(strategy, &mut ra, ncol, 2 * nt, |icol0, col| {
        let icol = icol0 + 1;
        for it in 1..=nt {
            let ph = (it * icol) as f64 * 0.001;
            col[2 * it - 2] = ph.cos();
            col[2 * it - 1] = ph.sin();
        }
        cfft1(col, nt);
    });
    // X pencils: gather the strided pencil into private scratch,
    // transform, scatter back. Pencils write disjoint strided positions,
    // so the parallel version double-buffers through a source copy.
    let npen = ny * nt;
    let workers = match strategy {
        Strategy::Serial => 1,
        Strategy::Threads(n) => n.max(1).min(npen.max(1)),
    };
    let src = ra.clone();
    if workers <= 1 {
        let mut cw = vec![0.0; 2 * nx];
        for ipen in 1..=npen {
            pencil(&src, &mut ra, &mut cw, nx, ny, nt, ipen);
        }
    } else {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // Disjoint strided writes: hand each worker a pencil range and a
        // raw view; ranges never overlap in the flattened layout because
        // each pencil owns positions ((ix-1)*ny*nt + ipen - 1) * 2.
        struct Out(*mut f64, usize);
        unsafe impl Sync for Out {}
        let out = Out(ra.as_mut_ptr(), ra.len());
        let next = AtomicUsize::new(1);
        std::thread::scope(|s| {
            for _ in 0..workers {
                let (src, out, next) = (&src, &out, &next);
                s.spawn(move || {
                    let mut cw = vec![0.0; 2 * nx];
                    loop {
                        let ipen = next.fetch_add(1, Ordering::Relaxed);
                        if ipen > npen {
                            break;
                        }
                        // SAFETY: pencils touch disjoint positions.
                        let view =
                            unsafe { std::slice::from_raw_parts_mut(out.0, out.1) };
                        pencil(src, view, &mut cw, nx, ny, nt, ipen);
                    }
                });
            }
        });
    }
    // Half-grid spectral shift (M3FK_SHFT): real parts damped.
    for icol in 1..=ncol {
        let koff = (icol - 1) * 2 * nt;
        for it in 1..=nt {
            ra[koff + 2 * it - 2] *= 0.999;
        }
    }
    let scale = 1.0 / nt as f64;
    for x in ra.iter_mut() {
        *x *= scale;
    }
    ra
}

fn pencil(src: &[f64], ra: &mut [f64], cw: &mut [f64], nx: usize, ny: usize, nt: usize, ipen: usize) {
    for ix in 1..=nx {
        let ksrc = ((ix - 1) * ny * nt + ipen - 1) * 2;
        cw[2 * ix - 2] = src[ksrc];
        cw[2 * ix - 1] = src[ksrc + 1];
    }
    cfft1(cw, nx);
    for ix in 1..=nx {
        let ksrc = ((ix - 1) * ny * nt + ipen - 1) * 2;
        ra[ksrc] = cw[2 * ix - 2];
        ra[ksrc + 1] = cw[2 * ix - 1];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(input: &[(f64, f64)]) -> Vec<(f64, f64)> {
        let n = input.len();
        (0..n)
            .map(|k| {
                let mut acc = (0.0, 0.0);
                for (j, &(re, im)) in input.iter().enumerate() {
                    let ang = -2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                    let (c, s) = (ang.cos(), ang.sin());
                    acc.0 += re * c - im * s;
                    acc.1 += re * s + im * c;
                }
                acc
            })
            .collect()
    }

    #[test]
    fn fft_matches_naive_dft() {
        let n = 16;
        let input: Vec<(f64, f64)> = (0..n)
            .map(|i| ((i as f64 * 0.3).sin(), (i as f64 * 0.7).cos() * 0.5))
            .collect();
        let mut r = Vec::with_capacity(2 * n);
        for &(re, im) in &input {
            r.push(re);
            r.push(im);
        }
        cfft1(&mut r, n);
        let want = naive_dft(&input);
        for k in 0..n {
            assert!(
                (r[2 * k] - want[k].0).abs() < 1e-9
                    && (r[2 * k + 1] - want[k].1).abs() < 1e-9,
                "bin {}: ({}, {}) vs {:?}",
                k,
                r[2 * k],
                r[2 * k + 1],
                want[k]
            );
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let n = 32;
        let mut r = vec![0.0; 2 * n];
        r[0] = 1.0;
        cfft1(&mut r, n);
        for k in 0..n {
            assert!((r[2 * k] - 1.0).abs() < 1e-12);
            assert!(r[2 * k + 1].abs() < 1e-12);
        }
    }

    #[test]
    fn parseval_energy_conserved() {
        let n = 64;
        let mut r: Vec<f64> = (0..2 * n).map(|i| ((i * 37 % 11) as f64 - 5.0) * 0.1).collect();
        let e_time: f64 = r.iter().map(|x| x * x).sum();
        cfft1(&mut r, n);
        let e_freq: f64 = r.iter().map(|x| x * x).sum::<f64>() / n as f64;
        assert!((e_time - e_freq).abs() < 1e-9 * e_time, "{} vs {}", e_time, e_freq);
    }

    #[test]
    fn m3fk_serial_threads_identical() {
        let p = SeisParams::demo();
        let a = m3fk(&p, Strategy::Serial);
        let b = m3fk(&p, Strategy::Threads(4));
        assert_eq!(a, b);
    }
}

//! Explicit second-order wave propagation — the native counterpart of
//! the FDIF module (same stencil, same constants, same source).

use crate::{SeisParams, Strategy};

/// Runs `ntime` steps of the 2-D wave equation on an `nx * ny` grid and
/// returns the final energy, exactly as FDIFB computes it.
pub fn propagate(p: &SeisParams, strategy: Strategy) -> (Vec<f64>, f64) {
    let (nx, ny) = (p.nx, p.ny);
    let nbuf = nx * ny + 8;
    let mut u = vec![0.0; nbuf];
    let mut up = vec![0.0; nbuf];
    let mut un = vec![0.0; nbuf];
    // Point source, MiniFort indexing: RA(NBUF + (NY/2 - 1)*NX + NX/2).
    up[(ny / 2 - 1) * nx + nx / 2 - 1] = 1.0;
    let c2 = (p.velo * p.dt / p.dx) * (p.velo * p.dt / p.dx) * 0.2;
    let workers = match strategy {
        Strategy::Serial => 1,
        Strategy::Threads(n) => n.max(1),
    };
    for _step in 0..p.ntime {
        // Stencil over interior rows, row-parallel with disjoint UN rows.
        let rows = ny - 2; // iy in 2..=ny-1
        let w = workers.min(rows.max(1));
        if w <= 1 {
            stencil_rows(&mut un, &u, &up, nx, 2, ny - 1, c2);
        } else {
            let un_rows = &mut un[nx..nx * (ny - 1)];
            std::thread::scope(|s| {
                let mut rest = un_rows;
                let mut row0 = 0usize;
                for k in 0..w {
                    let hi = rows * (k + 1) / w;
                    let (mine, tail) = rest.split_at_mut((hi - row0) * nx);
                    rest = tail;
                    let iy_lo = 2 + row0;
                    let (u, up) = (&u, &up);
                    s.spawn(move || {
                        for (r, row) in mine.chunks_mut(nx).enumerate() {
                            let iy = iy_lo + r;
                            stencil_one_row(row, u, up, nx, iy, c2);
                        }
                    });
                    row0 = hi;
                }
            });
        }
        // Plane rotation, same order as FDIF_SWAP.
        let n = nx * ny;
        u[..n].copy_from_slice(&up[..n]);
        up[..n].copy_from_slice(&un[..n]);
    }
    // Absorbing-boundary damping (FDIF_DAMP) before the energy sum.
    for x in up.iter_mut() {
        *x *= 0.9999;
    }
    let energy: f64 = up[..nx * ny].iter().map(|x| x * x).sum();
    (up, energy)
}

fn stencil_rows(un: &mut [f64], u: &[f64], up: &[f64], nx: usize, iy_lo: usize, iy_hi: usize, c2: f64) {
    for iy in iy_lo..=iy_hi {
        let row = &mut un[(iy - 1) * nx..iy * nx];
        stencil_one_row(row, u, up, nx, iy, c2);
    }
}

/// Computes one UN row (MiniFort `K = (IY-1)*NX + IX`, IX in 2..=NX-1).
fn stencil_one_row(row: &mut [f64], u: &[f64], up: &[f64], nx: usize, iy: usize, c2: f64) {
    for ix in 2..nx {
        let k = (iy - 1) * nx + ix - 1; // 0-based
        row[ix - 1] = 2.0 * up[k] - u[k]
            + c2 * (up[k - 1] + up[k + 1] + up[k - nx] + up[k + nx] - 4.0 * up[k]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> SeisParams {
        SeisParams {
            nx: 24,
            ny: 24,
            ntime: 30,
            ..SeisParams::demo()
        }
    }

    #[test]
    fn energy_spreads_from_source() {
        let (field, e) = propagate(&demo(), Strategy::Serial);
        assert!(e > 0.0);
        // The wavefront left the source cell.
        let nonzero = field.iter().filter(|x| x.abs() > 1e-12).count();
        assert!(nonzero > 10, "nonzero cells = {}", nonzero);
    }

    #[test]
    fn boundaries_stay_clamped() {
        let p = demo();
        let (field, _) = propagate(&p, Strategy::Serial);
        for ix in 0..p.nx {
            assert_eq!(field[ix], 0.0); // first row
            assert_eq!(field[(p.ny - 1) * p.nx + ix], 0.0); // last row
        }
    }

    #[test]
    fn serial_threads_identical() {
        let p = demo();
        let (a, ea) = propagate(&p, Strategy::Serial);
        let (b, eb) = propagate(&p, Strategy::Threads(4));
        assert_eq!(a, b);
        assert_eq!(ea, eb);
    }

    #[test]
    fn cfl_stable_magnitudes() {
        let (field, _) = propagate(&demo(), Strategy::Serial);
        assert!(field.iter().all(|x| x.abs() < 10.0), "instability detected");
    }
}

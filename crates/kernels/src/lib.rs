//! Native Rust implementations of the four SEISMIC components.
//!
//! These compute *exactly* the same numbers as the MiniFort modules in
//! `apar-workloads` (same formulas, same operation order), which gives
//! the repository a strong cross-validation: the interpreted pipeline
//! and the native kernels must agree to the last ulp-ish tolerance. They
//! also serve as the native-speed reference implementation a downstream
//! user would adopt, with [`Strategy`]-selectable outer-loop threading
//! (std scoped threads over contiguous chunks — the shape a
//! parallelizing compiler emits for the hand-annotated loops).

pub mod datagen;
pub mod fft;
pub mod findiff;
pub mod stack;

/// Execution strategy for a kernel's outer parallel loops.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Strategy {
    Serial,
    /// Fork `n` worker threads per parallel region.
    Threads(usize),
}

impl Strategy {
    fn workers(&self) -> usize {
        match self {
            Strategy::Serial => 1,
            Strategy::Threads(n) => (*n).max(1),
        }
    }
}

/// Runs `f(chunk_lo, chunk_hi, slice_disjoint_part)` over contiguous
/// row-chunks of `data`, splitting by `rows` of `row_len` each.
pub(crate) fn par_rows<T: Send>(
    strategy: Strategy,
    data: &mut [T],
    rows: usize,
    row_len: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    assert!(data.len() >= rows * row_len);
    let workers = strategy.workers().min(rows.max(1));
    if workers <= 1 {
        for r in 0..rows {
            f(r, &mut data[r * row_len..(r + 1) * row_len]);
        }
        return;
    }
    let (head, _) = data.split_at_mut(rows * row_len);
    std::thread::scope(|s| {
        let mut rest = head;
        let mut row0 = 0usize;
        for w in 0..workers {
            let hi = rows * (w + 1) / workers;
            let take = (hi - row0) * row_len;
            let (mine, tail) = rest.split_at_mut(take);
            rest = tail;
            let lo = row0;
            let f = &f;
            s.spawn(move || {
                for (k, chunk) in mine.chunks_mut(row_len).enumerate() {
                    f(lo + k, chunk);
                }
            });
            row0 = hi;
        }
    });
}

/// Parameters shared by the native kernels (mirrors the workload decks).
#[derive(Clone, Copy, Debug)]
pub struct SeisParams {
    pub ngath: usize,
    pub nfold: usize,
    pub nsamp: usize,
    pub nx: usize,
    pub ny: usize,
    pub nt: usize,
    pub ntime: usize,
    pub dt: f64,
    pub dx: f64,
    pub velo: f64,
}

impl SeisParams {
    pub fn ntrc(&self) -> usize {
        self.ngath * self.nfold
    }

    /// Matches `apar_workloads::seismic::SeismicParams` defaults.
    pub fn demo() -> Self {
        SeisParams {
            ngath: 8,
            nfold: 4,
            nsamp: 128,
            nx: 8,
            ny: 8,
            nt: 64,
            ntime: 16,
            dt: 0.002,
            dx: 10.0,
            velo: 2000.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_rows_covers_everything() {
        let mut v = vec![0u64; 8 * 5];
        par_rows(Strategy::Threads(3), &mut v, 8, 5, |r, row| {
            for (i, x) in row.iter_mut().enumerate() {
                *x = (r * 10 + i) as u64;
            }
        });
        for r in 0..8 {
            for i in 0..5 {
                assert_eq!(v[r * 5 + i], (r * 10 + i) as u64);
            }
        }
    }

    #[test]
    fn par_rows_serial_equals_threads() {
        let work = |r: usize, row: &mut [f64]| {
            for (i, x) in row.iter_mut().enumerate() {
                *x = ((r + 1) * (i + 3)) as f64 * 0.5;
            }
        };
        let mut a = vec![0.0; 60];
        let mut b = vec![0.0; 60];
        par_rows(Strategy::Serial, &mut a, 12, 5, work);
        par_rows(Strategy::Threads(4), &mut b, 12, 5, work);
        assert_eq!(a, b);
    }
}

//! Trace synthesis: Ricker wavelets with time-variant gain — the native
//! counterpart of the DGEN module.

use crate::{par_rows, SeisParams, Strategy};

/// Synthesizes `ntrc` traces of `nsamp` samples into a fresh buffer,
/// applying the same gain the MiniFort module applies.
pub fn generate(p: &SeisParams, strategy: Strategy) -> Vec<f64> {
    let (ntrc, nsamp) = (p.ntrc(), p.nsamp);
    let mut otra = vec![0.0; ntrc * nsamp];
    let dt = p.dt;
    let nfold = p.nfold;
    par_rows(strategy, &mut otra, ntrc, nsamp, |itr0, row| {
        // MiniFort's ITR is 1-based.
        let itr = itr0 + 1;
        let t0 = dt * (((itr - 1) % nfold) * 8 + 8) as f64;
        // Ricker source through the DGWAVE one-pole smoothing filter.
        let mut w = 0.0;
        for (is0, out) in row.iter_mut().enumerate() {
            let is = is0 + 1;
            let t = (is - 1) as f64 * dt - t0;
            let arg = 900.0 * t * t;
            let amp = (1.0 - 2.0 * arg) * (-arg).exp();
            w = w * 0.35 + amp * 0.65;
            *out = w;
        }
        for (is0, out) in row.iter_mut().enumerate() {
            *out *= 1.0 + (is0 + 1) as f64 * 0.002;
        }
    });
    otra
}

/// The DGEN module's window QC passes (FILT, DIFF, XCOR), applied with
/// the workload generator's deck offsets (IOFLT = 0, JOFLT = 2*NSAMP,
/// NXCOR = max(1, NSAMP/32 - 1)) — replicated so native and interpreted
/// pipelines produce identical buffers.
pub fn apply_qc(p: &SeisParams, otra: &mut [f64]) {
    let nsamp = p.nsamp;
    let (ioflt, joflt) = (0usize, 2 * nsamp);
    let nxcor = (nsamp / 32).saturating_sub(1).max(1);
    // DGEN_FILT
    for is in 1..=nsamp {
        otra[joflt + is - 1] = otra[joflt + is - 1] * 0.9 + otra[ioflt + is - 1] * 0.1;
    }
    // DGEN_DIFF
    for is in 1..=nsamp {
        otra[joflt + is - 1] -= otra[ioflt + is - 1] * 0.05;
    }
    // DGEN_XCOR: element OTRA(IOFLT + (IW-1)*32 + K) is 0-based index
    // ioflt + (iw-1)*32 + k - 1.
    for iw in 1..=nxcor {
        for k in 1..=20usize {
            let o = (iw - 1) * 32 + k - 1;
            otra[ioflt + o] = otra[joflt + o + 1] * 0.5 + otra[joflt + o] * 0.25;
        }
    }
}

/// Stride-8 checksum, matching the suite's CWRITE QC.
pub fn checksum(buf: &[f64]) -> f64 {
    buf.iter().step_by(8).sum()
}

/// Energy norm (sum of squares).
pub fn energy(buf: &[f64]) -> f64 {
    buf.iter().map(|x| x * x).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wavelet_peak_near_onset() {
        let p = SeisParams::demo();
        let otra = generate(&p, Strategy::Serial);
        // The smoothed Ricker peaks near the onset sample (is = 9 for
        // trace 1) and decays far from it.
        let itr = 1usize;
        let peak = otra[(itr - 1) * p.nsamp + 8].abs();
        let tail = otra[(itr - 1) * p.nsamp + p.nsamp - 1].abs();
        assert!(peak > 0.3, "peak = {}", peak);
        assert!(tail < 0.05 * peak, "tail = {} peak = {}", tail, peak);
    }

    #[test]
    fn serial_threads_identical() {
        let p = SeisParams::demo();
        let a = generate(&p, Strategy::Serial);
        let b = generate(&p, Strategy::Threads(4));
        assert_eq!(a, b);
    }

    #[test]
    fn energy_is_positive_and_stable() {
        let p = SeisParams::demo();
        let otra = generate(&p, Strategy::Serial);
        let e = energy(&otra);
        assert!(e > 0.0);
        assert_eq!(e, energy(&generate(&p, Strategy::Serial)));
    }
}

//! CMP stacking: fold-summation of gathers — the native counterpart of
//! the STAK module.

use crate::{par_rows, SeisParams, Strategy};

/// Stacks `ngath * nfold` input traces down to `ngath` output traces
/// (mean over the fold), exactly as STAKB does.
pub fn stack(p: &SeisParams, otra: &[f64], strategy: Strategy) -> Vec<f64> {
    let (ngath, nfold, nsamp) = (p.ngath, p.nfold, p.nsamp);
    assert!(otra.len() >= ngath * nfold * nsamp);
    let mut ra = vec![0.0; ngath * nsamp];
    par_rows(strategy, &mut ra, ngath, nsamp, |ig0, row| {
        for x in row.iter_mut() {
            *x = 0.0;
        }
        for ifo in 0..nfold {
            let joff = (ig0 * nfold + ifo) * nsamp;
            for (is, x) in row.iter_mut().enumerate() {
                *x += otra[joff + is];
            }
        }
        for x in row.iter_mut() {
            *x /= nfold as f64;
        }
    });
    ra
}

/// In-place trace reversal (the RESEQ utility's permutation).
pub fn reverse_trace(trace: &mut [f64]) {
    trace.reverse();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::generate;

    #[test]
    fn stack_of_identical_traces_is_identity() {
        let p = SeisParams {
            ngath: 2,
            nfold: 3,
            nsamp: 4,
            ..SeisParams::demo()
        };
        // All traces equal 2.0: stacked mean = 2.0.
        let otra = vec![2.0; p.ntrc() * p.nsamp];
        let ra = stack(&p, &otra, Strategy::Serial);
        assert!(ra.iter().all(|&x| (x - 2.0).abs() < 1e-15));
    }

    #[test]
    fn stack_is_linear() {
        let p = SeisParams::demo();
        let a = generate(&p, Strategy::Serial);
        let b: Vec<f64> = a.iter().map(|x| x * 3.0).collect();
        let sa = stack(&p, &a, Strategy::Serial);
        let sb = stack(&p, &b, Strategy::Serial);
        for (x, y) in sa.iter().zip(&sb) {
            assert!((y - 3.0 * x).abs() < 1e-9 * (1.0 + x.abs()));
        }
    }

    #[test]
    fn serial_threads_identical() {
        let p = SeisParams::demo();
        let otra = generate(&p, Strategy::Serial);
        let a = stack(&p, &otra, Strategy::Serial);
        let b = stack(&p, &otra, Strategy::Threads(4));
        assert_eq!(a, b);
    }
}

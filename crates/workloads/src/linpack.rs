//! LINPACK-style linear-algebra code.
//!
//! Anchors the cheap end of Figure 2: trivially analyzable vector loops
//! over statically shaped arrays. The factorization's outer K loop is a
//! genuine recurrence; the column-elimination and scaling loops are the
//! classic targets Polaris handled.

use crate::{TargetSpec, Workload};
use apar_core::Classification as C;

pub fn suite() -> Workload {
    let source = "\
PROGRAM LINPK
  PARAMETER (N = 48)
  REAL A(N, N), B(N), XS(N)
!$TARGET LIN_MGEN
  DO J = 1, N
    DO I = 1, N
      A(I, J) = REAL(MOD(I * 13 + J * 7, 19)) * 0.1 + 0.01
    ENDDO
    A(J, J) = A(J, J) + REAL(N)
  ENDDO
!$TARGET LIN_BGEN
  DO I = 1, N
    B(I) = 1.0
  ENDDO
! LU factorization without pivoting (diagonally dominant by
! construction). The K loop is serial; its inner loops are the targets.
  DO K = 1, N - 1
!$TARGET LIN_SCAL
    DO I = K + 1, N
      A(I, K) = A(I, K) / A(K, K)
    ENDDO
!$TARGET LIN_ELIM
    DO J = K + 1, N
      DO I = K + 1, N
        A(I, J) = A(I, J) - A(I, K) * A(K, J)
      ENDDO
    ENDDO
  ENDDO
! forward solve (serial recurrence over rows)
  DO I = 1, N
    S = B(I)
    DO K = 1, I - 1
      S = S - A(I, K) * XS(K)
    ENDDO
    XS(I) = S
  ENDDO
! back substitution (serial)
  DO II = 1, N
    I = N - II + 1
    S = XS(I)
    DO K = I + 1, N
      S = S - A(I, K) * XS(K)
    ENDDO
    XS(I) = S / A(I, I)
  ENDDO
  R = 0.0
!$TARGET LIN_RNRM
  DO I = 1, N
    R = R + XS(I) * XS(I)
  ENDDO
  CALL DSCAL(XS, N, 0.5)
  CALL DAXPY(XS, B, N, 2.0)
  R2 = DDOT(XS, B, N)
  CALL DCOPY(B, XS, N)
  WRITE(*,*) 'XNRM', R + R2 * 0.0001
END
SUBROUTINE DSCAL(X, N, C)
  REAL X(*)
  INTEGER N
!$TARGET LIN_VSCAL
  DO I = 1, N
    X(I) = X(I) * C
  ENDDO
  RETURN
END
SUBROUTINE DAXPY(X, Y, N, C)
  REAL X(*), Y(*)
  INTEGER N
!$TARGET LIN_VAXPY
  DO I = 1, N
    Y(I) = Y(I) + C * X(I)
  ENDDO
  RETURN
END
REAL FUNCTION DDOT(X, Y, N)
  REAL X(*), Y(*)
  INTEGER N
  DDOT = 0.0
  DO I = 1, N
    DDOT = DDOT + X(I) * Y(I)
  ENDDO
  RETURN
END
SUBROUTINE DCOPY(X, Y, N)
  REAL X(*), Y(*)
  INTEGER N
!$TARGET LIN_VCOPY
  DO I = 1, N
    Y(I) = X(I)
  ENDDO
  RETURN
END
";
    Workload {
        name: "LINPACK".into(),
        source: source.into(),
        deck: vec![],
        targets: vec![
            TargetSpec::new("LIN_MGEN", C::Autoparallelized, true),
            TargetSpec::new("LIN_BGEN", C::Autoparallelized, true),
            TargetSpec::new("LIN_SCAL", C::Autoparallelized, true),
            TargetSpec::new("LIN_ELIM", C::Autoparallelized, true),
            TargetSpec::new("LIN_RNRM", C::Autoparallelized, true),
            TargetSpec::new("LIN_VSCAL", C::Autoparallelized, true),
            // X and Y alias in the baseline (formal pair); call-site
            // inspection recovers them.
            TargetSpec::new("LIN_VAXPY", C::Aliasing, true),
            TargetSpec::new("LIN_VCOPY", C::Aliasing, true),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_resolves() {
        let w = suite();
        apar_minifort::frontend(&w.source).unwrap_or_else(|e| panic!("{}", e));
    }
}

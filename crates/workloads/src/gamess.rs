//! The GAMESS-like quantum-chemistry application.
//!
//! Reproduces the structures §2.1 and §2.3 describe: the user selects a
//! wavefunction (RHF / UHF / ROHF / GVB / MCSCF) through the input deck,
//! the dispatch multiplies the control-flow paths the compiler must
//! consider, and a single shared `X` array in a large COMMON holds all
//! per-method data, addressed from deck-derived `L*` offsets. The JKDER
//! gradient loop calls DABDFT (one-dimensional view of `X(LVEC)`,
//! indexed through `IA`) or DABGVB (two-dimensional `V(LDV,*)` view of
//! the same storage) depending on the method — the paper's canonical
//! access-representation example.

use crate::{DataSize, DeckValue, TargetSpec, Workload};
use apar_core::Classification as C;
use std::fmt::Write as _;

/// Problem dimensions.
#[derive(Clone, Copy, Debug)]
pub struct GamessParams {
    /// Orbital count.
    pub norb: i64,
    /// SCF iterations.
    pub niter: i64,
    /// Wavefunction selection (1=RHF 2=UHF 3=ROHF 4=GVB 5=MCSCF).
    pub scftyp: i64,
}

impl GamessParams {
    pub fn for_size(size: DataSize) -> Self {
        match size {
            DataSize::Test => GamessParams {
                norb: 6,
                niter: 2,
                scftyp: 4,
            },
            DataSize::Small => GamessParams {
                norb: 24,
                niter: 4,
                scftyp: 4,
            },
            DataSize::Medium => GamessParams {
                norb: 48,
                niter: 6,
                scftyp: 4,
            },
        }
    }

    fn norb2(&self) -> i64 {
        self.norb * self.norb
    }

    /// X capacity: density, fock, vectors, scratch, plus slack.
    pub fn capx(&self) -> i64 {
        6 * self.norb2() + 4 * self.norb + 128
    }

    fn lden(&self) -> i64 {
        0
    }
    fn lfck(&self) -> i64 {
        self.norb2() + 8
    }
    fn lvec(&self) -> i64 {
        2 * self.norb2() + 16
    }
    fn lscr(&self) -> i64 {
        4 * self.norb2() + 24
    }
}

const CTRL: &str =
    "  COMMON /GCTRL/ SCFTYP, NORB, NITER, LDEN, LFCK, LVEC, LSCR, NORB2\n  INTEGER SCFTYP\n";

pub fn suite(size: DataSize) -> Workload {
    let p = GamessParams::for_size(size);
    let mut s = String::new();

    // ---- Main program ----------------------------------------------------
    let _ = write!(
        s,
        "PROGRAM GMSMAIN\n\
         {CTRL}\
         \x20 PARAMETER (MCAPX = {capx})\n\
         \x20 COMMON /BIG/ X(MCAPX)\n\
         \x20 READ(*,*) SCFTYP, NORB, NITER\n\
         \x20 READ(*,*) LDEN, LFCK, LVEC, LSCR\n\
         \x20 IF (SCFTYP .LT. 1) STOP\n\
         \x20 IF (SCFTYP .GT. 5) STOP\n\
         \x20 IF (NORB .LT. 2) STOP\n\
         \x20 IF (NORB .GT. 512) STOP\n\
         \x20 IF (NITER .LT. 1) STOP\n\
         \x20 IF (NITER .GT. 200) STOP\n\
         \x20 IF (LDEN .LT. 0) STOP\n\
         \x20 IF (LFCK .LT. LDEN + NORB * NORB) STOP\n\
         \x20 IF (LVEC .LT. LFCK + NORB * NORB) STOP\n\
         \x20 IF (LSCR .LT. LVEC + 2 * NORB * NORB) STOP\n\
         \x20 NORB2 = NORB * NORB\n\
         \x20 DO I = 1, MCAPX\n\
         \x20   X(I) = 0.0\n\
         \x20 ENDDO\n\
         \x20 CALL BASGEN(X)\n\
         \x20 CALL SCFDRV(X)\n\
         \x20 CALL GRDDRV(X)\n\
         \x20 CALL GMSOUT(X)\n\
         END\n\n",
        capx = p.capx(),
    );

    // ---- Basis / initial data -------------------------------------------
    let _ = write!(
        s,
        "SUBROUTINE BASGEN(X)\n\
         \x20 REAL X(*)\n\
         {CTRL}\
         !$TARGET GMS_BASGEN\n\
         \x20 DO K = 1, NORB2\n\
         \x20   X(LDEN + K) = REAL(MOD(K * 7, 13)) * 0.01 + 0.1\n\
         \x20 ENDDO\n\
         !$TARGET GMS_VECINI\n\
         \x20 DO K = 1, NORB2\n\
         \x20   X(LVEC + K) = REAL(MOD(K * 11, 17)) * 0.01\n\
         \x20 ENDDO\n\
         \x20 RETURN\n\
         END\n\n",
    );

    // ---- SCF driver: user-selected wavefunction (multifunctionality) ------
    let _ = write!(
        s,
        "SUBROUTINE SCFDRV(X)\n\
         \x20 REAL X(*)\n\
         {CTRL}\
         \x20 DO ITER = 1, NITER\n\
         \x20   IF (SCFTYP .EQ. 1) THEN\n\
         \x20     CALL RHFCL(X)\n\
         \x20   ELSE IF (SCFTYP .EQ. 2) THEN\n\
         \x20     CALL UHFCL(X)\n\
         \x20   ELSE IF (SCFTYP .EQ. 3) THEN\n\
         \x20     CALL ROHFCL(X)\n\
         \x20   ELSE IF (SCFTYP .EQ. 4) THEN\n\
         \x20     CALL GVBCL(X)\n\
         \x20   ELSE\n\
         \x20     CALL MCSCF(X)\n\
         \x20   ENDIF\n\
         \x20   CALL HSTAR(X)\n\
         \x20   CALL TWOEI(X)\n\
         \x20 ENDDO\n\
         \x20 RETURN\n\
         END\n\n",
    );

    // ---- Per-method drivers ------------------------------------------------
    // Each touches the shared X differently; bodies reuse common routine
    // families so the call graph fans out like the real code.
    for (unit, extra) in [
        ("RHFCL", "  CALL DENUPD(X(LDEN + 1), X(LFCK + 1), NORB2)\n"),
        (
            "UHFCL",
            "  CALL SPNMIX(X(LVEC + 1), X(LDEN + 1), NORB2)\n  CALL DENUPD(X(LDEN + 1), X(LFCK + 1), NORB2)\n",
        ),
        (
            "ROHFCL",
            "  CALL COREAD(X(LVEC + 1), X(LFCK + 1), NORB2)\n  CALL DENUPD(X(LDEN + 1), X(LFCK + 1), NORB2)\n",
        ),
        (
            "GVBCL",
            "  CALL GVBPR(X)\n  CALL FCKMIX(X(LDEN + 1), X(LFCK + 1), NORB2)\n  CALL DENUPD(X(LDEN + 1), X(LFCK + 1), NORB2)\n",
        ),
        (
            "MCSCF",
            "  CALL CIGATH(X)\n  CALL OVLMIX(X(LVEC + 1), X(LDEN + 1), NORB2)\n  CALL DENUPD(X(LDEN + 1), X(LFCK + 1), NORB2)\n",
        ),
    ] {
        let _ = write!(
            s,
            "SUBROUTINE {unit}(X)\n\
             \x20 REAL X(*)\n\
             {CTRL}\
             {extra}\
             \x20 RETURN\n\
             END\n\n",
        );
    }

    // ---- HSTAR: Fock-like build -------------------------------------------
    let _ = write!(
        s,
        "SUBROUTINE HSTAR(X)\n\
         \x20 REAL X(*)\n\
         {CTRL}\
         !$TARGET HSTAR_DIAG\n\
         \x20 DO I = 1, NORB\n\
         \x20   X(LFCK + (I - 1) * NORB + I) = X(LDEN + (I - 1) * NORB + I) * 2.0\n\
         \x20 ENDDO\n\
         !$TARGET HSTAR_ROWS\n\
         \x20 DO I = 1, NORB\n\
         \x20   DO J = 1, NORB\n\
         \x20     X(LFCK + (I - 1) * NORB + J) = X(LFCK + (I - 1) * NORB + J) + X(LDEN + (J - 1) * NORB + I) * 0.5\n\
         \x20   ENDDO\n\
         \x20 ENDDO\n\
         !$TARGET HSTAR_SCAL\n\
         \x20 DO K = 1, NORB2\n\
         \x20   X(LFCK + K) = X(LFCK + K) * 0.998\n\
         \x20 ENDDO\n\
         \x20 RETURN\n\
         END\n\n",
    );

    // ---- TWOEI: two-electron integral sweep (deep, triangular) -------------
    s.push_str(
        "SUBROUTINE TWOEI(X)\n\
         \x20 REAL X(*)\n",
    );
    s.push_str(CTRL);
    s.push_str("!$TARGET TWOEI_SHELLS\n  DO II = 1, NORB\n");
    for t in 0..18 {
        let _ = writeln!(
            s,
            "    X(LSCR + (II - 1) * 32 + {a}) = X(LFCK + (II - 1) * 32 + {b}) * 0.25 + X(LDEN + (II - 1) * 32 + {a}) * 0.125",
            a = t + 1,
            b = t + 2,
        );
    }
    s.push_str(
        "  ENDDO\n\
         !$TARGET TWOEI_PRIM\n\
         \x20 DO I = 1, NORB\n\
         \x20   DO J = 1, NORB\n\
         \x20     X(LSCR + (I - 1) * NORB + J) = X(LDEN + (I - 1) * NORB + J) * X(LVEC + (J - 1) * NORB + I)\n\
         \x20   ENDDO\n\
         \x20 ENDDO\n\
         \x20 RETURN\n\
         END\n\n",
    );

    // ---- JKDER: the gradient loop of the paper's §2.3 example --------------
    let _ = write!(
        s,
        "SUBROUTINE GRDDRV(X)\n\
         \x20 REAL X(*)\n\
         {CTRL}\
         \x20 CALL JKDER(X)\n\
         \x20 CALL GRDACC(X(LFCK + 1), X(LSCR + 1), NORB2)\n\
         \x20 RETURN\n\
         END\n\n\
         SUBROUTINE JKDER(X)\n\
         \x20 REAL X(*)\n\
         {CTRL}\
         \x20 LOGICAL HFSCF, ROGVB\n\
         \x20 HFSCF = SCFTYP .LE. 3\n\
         \x20 ROGVB = SCFTYP .GE. 4\n\
         !$TARGET JKDER_MAIN\n\
         \x20 DO ISHL = 1, NORB\n\
         \x20   IF (HFSCF) THEN\n\
         \x20     CALL DABDFT(X(LVEC + (ISHL - 1) * NORB + 1), NORB)\n\
         \x20   ENDIF\n\
         \x20   IF (ROGVB) THEN\n\
         \x20     CALL DABGVB(X(LVEC + (ISHL - 1) * NORB + 1), NORB, 1)\n\
         \x20   ENDIF\n\
         \x20 ENDDO\n\
         \x20 RETURN\n\
         END\n\n\
         SUBROUTINE DABDFT(XD, N)\n\
         \x20 REAL XD(*)\n\
         \x20 INTEGER N\n\
         \x20 INTEGER IA(1024)\n\
         \x20 DO I = 1, N\n\
         \x20   IA(I) = N - I + 1\n\
         \x20 ENDDO\n\
         !$TARGET DAB_GATH\n\
         \x20 DO I = 1, N\n\
         \x20   XD(IA(I)) = XD(IA(I)) * 0.5\n\
         \x20 ENDDO\n\
         \x20 RETURN\n\
         END\n\n\
         SUBROUTINE DABGVB(V, LDV, NCOL)\n\
         \x20 REAL V(LDV, *)\n\
         \x20 INTEGER LDV, NCOL\n\
         !$TARGET DAB_GVB\n\
         \x20 DO J = 1, NCOL\n\
         \x20   DO I = 1, LDV\n\
         \x20     V(I, J) = V(I, J) * 0.5 + 0.01\n\
         \x20   ENDDO\n\
         \x20 ENDDO\n\
         \x20 RETURN\n\
         END\n\n",
    );

    // ---- GVB pair / MCSCF CI helpers ---------------------------------------
    let _ = write!(
        s,
        "SUBROUTINE GVBPR(X)\n\
         \x20 REAL X(*)\n\
         {CTRL}\
         !$TARGET GVB_PAIRS\n\
         \x20 DO IP = 1, NORB\n\
         \x20   CALL PAIRUP(X(LSCR + (IP - 1) * NORB + 1), NORB)\n\
         \x20 ENDDO\n\
         \x20 RETURN\n\
         END\n\n\
         SUBROUTINE PAIRUP(P, N)\n\
         \x20 REAL P(*)\n\
         \x20 INTEGER N\n\
         \x20 DO K = 1, N\n\
         \x20   P(K) = P(K) + 0.002\n\
         \x20 ENDDO\n\
         \x20 RETURN\n\
         END\n\n\
         SUBROUTINE CIGATH(X)\n\
         \x20 REAL X(*)\n\
         \x20 INTEGER ICI(4096)\n\
         {CTRL}\
         \x20 DO K = 1, NORB2\n\
         \x20   ICI(K) = NORB2 - K + 1\n\
         \x20 ENDDO\n\
         !$TARGET MCSCF_CI\n\
         \x20 DO K = 1, NORB2\n\
         \x20   X(LSCR + ICI(K)) = X(LSCR + ICI(K)) + 0.001\n\
         \x20 ENDDO\n\
         \x20 RETURN\n\
         END\n\n",
    );

    // ---- Shared-X utility families -----------------------------------------
    // Aliasing (formal pairs over X sections).
    for (name, body) in [
        ("DENUPD", "A(K) = A(K) * 0.9 + B(K) * 0.1"),
        ("SPNMIX", "B(K) = B(K) + A(K) * 0.25"),
        ("GRDACC", "B(K) = B(K) + A(K)"),
        ("FCKMIX", "B(K) = A(K) * 0.5 + B(K) * 0.5"),
        ("COREAD", "B(K) = B(K) + A(K) * 0.01"),
        ("OVLMIX", "B(K) = A(K) * 1.1"),
        ("DAMPD", "B(K) = B(K) * 0.95 + A(K) * 0.05"),
        ("LEVSH", "B(K) = A(K) + 0.2"),
    ] {
        let _ = write!(
            s,
            "SUBROUTINE {name}(A, B, N)\n\
             \x20 REAL A(*), B(*)\n\
             \x20 INTEGER N\n\
             !$TARGET GMS_{name}\n\
             \x20 DO K = 1, N\n\
             \x20   {body}\n\
             \x20 ENDDO\n\
             \x20 RETURN\n\
             END\n\n",
        );
    }

    // Deck-offset windows on X (rangeless) + symbolic-shape + section users.
    let _ = write!(
        s,
        "SUBROUTINE GMSOUT(X)\n\
         \x20 REAL X(*)\n\
         {CTRL}\
         !$TARGET GMS_WCOPY\n\
         \x20 DO K = 1, NORB2\n\
         \x20   X(LFCK + K) = X(LFCK + K) * 0.5 + X(LDEN + K) * 0.5\n\
         \x20 ENDDO\n\
         !$TARGET GMS_WDIFF\n\
         \x20 DO K = 1, NORB2\n\
         \x20   X(LVEC + K) = X(LVEC + K) - X(LDEN + K) * 0.1\n\
         \x20 ENDDO\n\
         !$TARGET GMS_WSCAL\n\
         \x20 DO K = 1, NORB2\n\
         \x20   X(LSCR + K) = X(LSCR + K) + X(LFCK + K) * 0.2\n\
         \x20 ENDDO\n\
         !$TARGET GMS_WNORM\n\
         \x20 DO K = 1, NORB2\n\
         \x20   X(LSCR + K) = X(LSCR + K) * 0.5 + X(LVEC + K) * 0.5\n\
         \x20 ENDDO\n\
         !$TARGET GMS_ORTHO\n\
         \x20 DO I = 1, NORB\n\
         \x20   DO K = 1, NORB\n\
         \x20     X(LVEC + (I - 1) * NORB + K) = X(LVEC + (I - 1) * NORB + K) * 0.99\n\
         \x20   ENDDO\n\
         \x20 ENDDO\n\
         !$TARGET GMS_SQ2TR\n\
         \x20 DO I = 1, NORB\n\
         \x20   DO J = 1, NORB\n\
         \x20     X(LSCR + (J - 1) * NORB + I) = X(LDEN + (I - 1) * NORB + J)\n\
         \x20   ENDDO\n\
         \x20 ENDDO\n\
         !$TARGET GMS_PIDX\n\
         \x20 DO I = 1, NORB\n\
         \x20   X(LSCR + I * (I - 1) / 2 + 1) = X(LSCR + I * (I - 1) / 2 + 1) + 1.0\n\
         \x20 ENDDO\n\
         \x20 CALL DAMPD(X(LDEN + 1), X(LFCK + 1), NORB2)\n\
         \x20 CALL LEVSH(X(LDEN + 1), X(LVEC + 1), NORB2)\n\
         \x20 DIP = 0.0\n\
         !$TARGET GMS_DIPOL\n\
         \x20 DO K = 1, NORB2\n\
         \x20   DIP = DIP + X(LDEN + K) * REAL(K) * 0.001\n\
         \x20 ENDDO\n\
         !$TARGET GMS_ORTH2\n\
         \x20 DO I = 1, NORB\n\
         \x20   DO K = 1, NORB\n\
         \x20     X(LSCR + (I - 1) * NORB + K) = X(LVEC + (I - 1) * NORB + K) * 0.5\n\
         \x20   ENDDO\n\
         \x20 ENDDO\n\
         \x20 EN = 0.0\n\
         !$TARGET GMS_TRACE\n\
         \x20 DO K = 1, NORB2\n\
         \x20   EN = EN + X(LDEN + K) * X(LFCK + K)\n\
         \x20 ENDDO\n\
         \x20 WRITE(*,*) 'ENERGY', EN\n\
         \x20 CALL MOSECT(X)\n\
         \x20 CALL SHLSRT(X)\n\
         \x20 RETURN\n\
         END\n\n\
         SUBROUTINE MOSECT(X)\n\
         \x20 REAL X(*)\n\
         {CTRL}\
         !$TARGET MO_SECT\n\
         \x20 DO IMO = 1, NORB\n\
         \x20   CALL PAIRUP(X(LVEC + (IMO - 1) * NORB + 1), NORB)\n\
         \x20 ENDDO\n\
         \x20 RETURN\n\
         END\n\n\
         SUBROUTINE SHLSRT(X)\n\
         \x20 REAL X(*)\n\
         \x20 INTEGER MAPS(4096)\n\
         {CTRL}\
         \x20 DO K = 1, NORB\n\
         \x20   MAPS(K) = NORB - K + 1\n\
         \x20 ENDDO\n\
         !$TARGET SHL_SORT\n\
         \x20 DO K = 1, NORB\n\
         \x20   X(LSCR + MAPS(K)) = X(LSCR + MAPS(K)) * 1.01\n\
         \x20 ENDDO\n\
         !$TARGET BAS_MAP\n\
         \x20 DO K = 1, NORB\n\
         \x20   X(LFCK + MAPS(K)) = X(LFCK + MAPS(K)) + 0.001\n\
         \x20 ENDDO\n\
         \x20 RETURN\n\
         END\n\n",
    );

    Workload {
        name: "GAMESS".into(),
        source: s,
        deck: vec![
            DeckValue::Int(p.scftyp),
            DeckValue::Int(p.norb),
            DeckValue::Int(p.niter),
            DeckValue::Int(p.lden()),
            DeckValue::Int(p.lfck()),
            DeckValue::Int(p.lvec()),
            DeckValue::Int(p.lscr()),
        ],
        targets: targets(),
    }
}

/// The GAMESS target manifest (~33 loops).
pub fn targets() -> Vec<TargetSpec> {
    let mut t = vec![
        TargetSpec::new("GMS_BASGEN", C::Autoparallelized, true),
        TargetSpec::new("GMS_VECINI", C::Autoparallelized, true),
        TargetSpec::new("HSTAR_DIAG", C::SymbolAnalysis, true),
        TargetSpec::new("HSTAR_ROWS", C::SymbolAnalysis, true),
        TargetSpec::new("HSTAR_SCAL", C::Autoparallelized, true),
        TargetSpec::new("TWOEI_SHELLS", C::Complexity, false),
        TargetSpec::new("TWOEI_PRIM", C::SymbolAnalysis, true),
        TargetSpec::new("JKDER_MAIN", C::AccessRepresentation, true),
        TargetSpec::new("DAB_GATH", C::Indirection, true),
        TargetSpec::new("DAB_GVB", C::Autoparallelized, true),
        TargetSpec::new("GVB_PAIRS", C::AccessRepresentation, true),
        TargetSpec::new("MCSCF_CI", C::Indirection, true),
        TargetSpec::new("GMS_WCOPY", C::Rangeless, true),
        TargetSpec::new("GMS_WDIFF", C::Rangeless, true),
        TargetSpec::new("GMS_WSCAL", C::Rangeless, true),
        TargetSpec::new("GMS_WNORM", C::Rangeless, true),
        TargetSpec::new("GMS_ORTHO", C::SymbolAnalysis, true),
        TargetSpec::new("GMS_SQ2TR", C::SymbolAnalysis, false),
        TargetSpec::new("GMS_PIDX", C::SymbolAnalysis, false),
        TargetSpec::new("GMS_TRACE", C::Autoparallelized, true),
        TargetSpec::new("GMS_DIPOL", C::Autoparallelized, true),
        TargetSpec::new("GMS_ORTH2", C::SymbolAnalysis, true),
        TargetSpec::new("MO_SECT", C::AccessRepresentation, true),
        TargetSpec::new("SHL_SORT", C::Indirection, true),
        TargetSpec::new("BAS_MAP", C::Indirection, true),
    ];
    // Formal pairs bound to X *sections*: proving them disjoint needs
    // interprocedural array regions, beyond even the full profile.
    for name in [
        "DENUPD", "SPNMIX", "GRDACC", "FCKMIX", "COREAD", "OVLMIX", "DAMPD", "LEVSH",
    ] {
        t.push(TargetSpec::new(&format!("GMS_{}", name), C::Aliasing, false));
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_resolves() {
        let w = suite(DataSize::Test);
        apar_minifort::frontend(&w.source).unwrap_or_else(|e| panic!("{}", e));
    }

    #[test]
    fn target_scale_matches_paper() {
        let n = targets().len();
        assert!((25..=40).contains(&n), "targets = {}", n);
    }
}

//! PERFECT-BENCHMARKS-style kernel codes.
//!
//! The paper (§2.5.1) explains why these are easy: they were created by
//! extracting the computationally intensive part of applications and
//! *statically assigning* the variables their outer contexts would have
//! provided. The generators below follow that recipe — PARAMETER sizes,
//! shallow call nesting, and target loops sitting at (or one call below)
//! the main program.

use crate::{TargetSpec, Workload};
use apar_core::Classification as C;

/// All four kernel codes (compiled separately, like the real suite).
pub fn codes() -> Vec<Workload> {
    vec![adm(), trf(), mdg(), bdn()]
}

/// A representative single code (for quick tests).
pub fn suite() -> Workload {
    adm()
}

/// ADM-like: Jacobi sweeps on a static 2-D grid.
fn adm() -> Workload {
    let source = "\
PROGRAM PFADM
  PARAMETER (N = 64, NSTEP = 20)
  COMMON /GRID/ U(N, N), UN(N, N)
!$TARGET PF_INIT
  DO J = 1, N
    DO I = 1, N
      U(I, J) = REAL(I + J) * 0.01
      UN(I, J) = 0.0
    ENDDO
  ENDDO
  DO ISTEP = 1, NSTEP
    CALL ADMSTP
  ENDDO
  R = 0.0
!$TARGET PF_RESID
  DO J = 1, N
    DO I = 1, N
      R = R + U(I, J) * U(I, J)
    ENDDO
  ENDDO
  WRITE(*,*) 'RESID', R
END
SUBROUTINE ADMSTP
  PARAMETER (N = 64)
  COMMON /GRID/ U(N, N), UN(N, N)
!$TARGET PF_SWEEP
  DO J = 2, N - 1
    DO I = 2, N - 1
      UN(I, J) = 0.25 * (U(I - 1, J) + U(I + 1, J) + U(I, J - 1) + U(I, J + 1))
    ENDDO
  ENDDO
!$TARGET PF_COPY
  DO J = 2, N - 1
    DO I = 2, N - 1
      U(I, J) = UN(I, J)
    ENDDO
  ENDDO
  RETURN
END
";
    Workload {
        name: "PERFECT/ADM".into(),
        source: source.into(),
        deck: vec![],
        targets: vec![
            TargetSpec::new("PF_INIT", C::Autoparallelized, true),
            TargetSpec::new("PF_SWEEP", C::Autoparallelized, true),
            TargetSpec::new("PF_COPY", C::Autoparallelized, true),
            TargetSpec::new("PF_RESID", C::Autoparallelized, true),
        ],
    }
}

/// TRFD-like: dense transform plus triangular packing.
fn trf() -> Workload {
    let source = "\
PROGRAM PFTRF
  PARAMETER (N = 40)
  REAL A(N, N), B(N, N), CC(N, N), XT(1024)
!$TARGET PF_TGEN
  DO J = 1, N
    DO I = 1, N
      A(I, J) = REAL(I) * 0.01 + REAL(J) * 0.02
      B(I, J) = REAL(I - J) * 0.005
    ENDDO
  ENDDO
!$TARGET PF_MXM
  DO J = 1, N
    DO I = 1, N
      S = 0.0
      DO K = 1, N
        S = S + A(I, K) * B(K, J)
      ENDDO
      CC(I, J) = S
    ENDDO
  ENDDO
!$TARGET PF_TRI
  DO I = 1, N
    DO J = 1, I
      XT(I * (I - 1) / 2 + J) = CC(I, J)
    ENDDO
  ENDDO
  WRITE(*,*) 'T11', XT(1)
END
";
    Workload {
        name: "PERFECT/TRFD".into(),
        source: source.into(),
        deck: vec![],
        targets: vec![
            TargetSpec::new("PF_TGEN", C::Autoparallelized, true),
            TargetSpec::new("PF_MXM", C::Autoparallelized, true),
            TargetSpec::new("PF_TRI", C::SymbolAnalysis, false),
        ],
    }
}

/// MDG-like: O(N^2) pair interactions with a cutoff guard.
fn mdg() -> Workload {
    let source = "\
PROGRAM PFMDG
  PARAMETER (N = 256, NSTEP = 4)
  COMMON /ATOMS/ X(N), V(N), F(N)
!$TARGET PF_PINIT
  DO I = 1, N
    X(I) = REAL(I) * 0.3
    V(I) = 0.0
  ENDDO
  DO ISTEP = 1, NSTEP
    CALL MDSTEP
  ENDDO
  EK = 0.0
!$TARGET PF_EKIN
  DO I = 1, N
    EK = EK + V(I) * V(I)
  ENDDO
  WRITE(*,*) 'EK', EK
END
SUBROUTINE MDSTEP
  PARAMETER (N = 256)
  COMMON /ATOMS/ X(N), V(N), F(N)
!$TARGET PF_PAIRS
  DO I = 1, N
    FI = 0.0
    DO J = 1, N
      D = X(I) - X(J)
      IF (ABS(D) .LT. 2.5) THEN
        FI = FI + D * (1.0 - ABS(D) * 0.4)
      ENDIF
    ENDDO
    F(I) = FI
  ENDDO
!$TARGET PF_VUPD
  DO I = 1, N
    V(I) = V(I) + F(I) * 0.01
    X(I) = X(I) + V(I) * 0.01
  ENDDO
  RETURN
END
";
    Workload {
        name: "PERFECT/MDG".into(),
        source: source.into(),
        deck: vec![],
        targets: vec![
            TargetSpec::new("PF_PINIT", C::Autoparallelized, true),
            TargetSpec::new("PF_PAIRS", C::Autoparallelized, true),
            TargetSpec::new("PF_VUPD", C::Autoparallelized, true),
            TargetSpec::new("PF_EKIN", C::Autoparallelized, true),
        ],
    }
}

/// BDNA-like: vector utilities with one genuine recurrence.
fn bdn() -> Workload {
    let source = "\
PROGRAM PFBDN
  PARAMETER (N = 2048)
  REAL W(N), Y(N), Z(N)
!$TARGET PF_VINIT
  DO I = 1, N
    W(I) = REAL(MOD(I, 17)) * 0.1
    Y(I) = REAL(MOD(I, 23)) * 0.05
  ENDDO
!$TARGET PF_AXPY
  DO I = 1, N
    Z(I) = Y(I) + 2.5 * W(I)
  ENDDO
! first-order recurrence: genuinely serial
  Z(1) = Z(1) + 1.0
  DO I = 2, N
    Z(I) = Z(I) + 0.5 * Z(I - 1)
  ENDDO
  S = 0.0
!$TARGET PF_DOT
  DO I = 1, N
    S = S + Z(I) * W(I)
  ENDDO
  WRITE(*,*) 'DOT', S
END
";
    Workload {
        name: "PERFECT/BDNA".into(),
        source: source.into(),
        deck: vec![],
        targets: vec![
            TargetSpec::new("PF_VINIT", C::Autoparallelized, true),
            TargetSpec::new("PF_AXPY", C::Autoparallelized, true),
            TargetSpec::new("PF_DOT", C::Autoparallelized, true),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_codes_parse() {
        for w in codes() {
            apar_minifort::frontend(&w.source)
                .unwrap_or_else(|e| panic!("{}: {}", w.name, e));
        }
    }

    #[test]
    fn kernel_shape_is_shallow() {
        // Perfect-style codes keep their targets in the main program.
        for w in codes() {
            let rp = apar_minifort::frontend(&w.source).expect("frontend");
            let main = rp.main_unit().expect("main");
            assert!(!main.target_loops().is_empty(), "{}", w.name);
        }
    }
}

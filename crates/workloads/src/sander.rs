//! The SANDER-like molecular-dynamics application (the FORTRAN 77
//! computational core of AMBER, per the paper's footnote).
//!
//! Reproduces the `imin` multifunctionality (§2.1 — minimization vs
//! molecular dynamics chosen from the input deck), neighbor-list force
//! loops with array indirection, bonded-term loops indexed through
//! partner tables, and deck-driven solute/solvent partition offsets.
//! SANDER appears in Figure 5 with indirection as the dominant
//! hindrance; this mimic preserves that shape.

use crate::{DataSize, DeckValue, TargetSpec, Workload};
use apar_core::Classification as C;
use std::fmt::Write as _;

/// Problem dimensions.
#[derive(Clone, Copy, Debug)]
pub struct SanderParams {
    pub natom: i64,
    pub nstep: i64,
    pub npair_per_atom: i64,
    /// 1 = minimization, 0 = molecular dynamics.
    pub imin: i64,
}

impl SanderParams {
    pub fn for_size(size: DataSize) -> Self {
        match size {
            DataSize::Test => SanderParams {
                natom: 16,
                nstep: 2,
                npair_per_atom: 4,
                imin: 0,
            },
            DataSize::Small => SanderParams {
                natom: 256,
                nstep: 5,
                npair_per_atom: 16,
                imin: 0,
            },
            DataSize::Medium => SanderParams {
                natom: 1024,
                nstep: 8,
                npair_per_atom: 24,
                imin: 0,
            },
        }
    }

    fn nbond(&self) -> i64 {
        self.natom - 1
    }

    fn npair(&self) -> i64 {
        self.natom * self.npair_per_atom
    }

    /// Solvent window starts past the solute atoms.
    fn isolu(&self) -> i64 {
        0
    }
    fn isolv(&self) -> i64 {
        self.natom
    }

    pub fn maxatm(&self) -> i64 {
        self.natom * 2 + 64
    }
    pub fn maxpr(&self) -> i64 {
        self.npair() + 64
    }
}

const CTRL: &str = "  COMMON /MDCTRL/ IMIN, NATOM, NSTEP, NBOND, NPAIR, ISOLU, ISOLV, NK, NDIH\n";

pub fn suite(size: DataSize) -> Workload {
    let p = SanderParams::for_size(size);
    let mut s = String::new();

    let _ = write!(
        s,
        "PROGRAM SANDER\n\
         {CTRL}\
         \x20 PARAMETER (MAXATM = {maxatm}, MAXPR = {maxpr})\n\
         \x20 COMMON /CRDS/ X(MAXATM), V(MAXATM), F(MAXATM)\n\
         \x20 COMMON /TOPO/ IBND(MAXATM), JBND(MAXATM), NBLST(MAXPR), IPOF(MAXATM)\n\
         \x20 READ(*,*) IMIN, NATOM, NSTEP\n\
         \x20 READ(*,*) NBOND, NPAIR\n\
         \x20 READ(*,*) ISOLU, ISOLV, NK, NDIH\n\
         \x20 IF (IMIN .LT. 0) STOP\n\
         \x20 IF (IMIN .GT. 1) STOP\n\
         \x20 IF (NATOM .LT. 4) STOP\n\
         \x20 IF (NATOM .GT. 65536) STOP\n\
         \x20 IF (NSTEP .LT. 1) STOP\n\
         \x20 IF (NSTEP .GT. 100000) STOP\n\
         \x20 IF (NBOND .LT. 1) STOP\n\
         \x20 IF (NBOND .GE. NATOM) STOP\n\
         \x20 IF (NPAIR .LT. 1) STOP\n\
         \x20 IF (NPAIR .GT. {maxpr}) STOP\n\
         \x20 IF (ISOLU .LT. 0) STOP\n\
         \x20 IF (ISOLV .LT. ISOLU + NATOM) STOP\n\
         \x20 IF (NK .LT. 2) STOP\n\
         \x20 IF (NK .GT. 16) STOP\n\
         \x20 IF (NDIH .LT. 1) STOP\n\
         \x20 CALL MDINIT\n\
         \x20 IF (IMIN .EQ. 1) THEN\n\
         \x20   CALL RUNMIN\n\
         \x20 ELSE\n\
         \x20   CALL RUNMD\n\
         \x20 ENDIF\n\
         \x20 CALL MDOUT\n\
         END\n\n",
        maxatm = p.maxatm(),
        maxpr = p.maxpr(),
    );

    // ---- Initialization -----------------------------------------------------
    let _ = write!(
        s,
        "SUBROUTINE MDINIT\n\
         {CTRL}\
         \x20 PARAMETER (MAXATM = {maxatm}, MAXPR = {maxpr})\n\
         \x20 COMMON /CRDS/ X(MAXATM), V(MAXATM), F(MAXATM)\n\
         \x20 COMMON /TOPO/ IBND(MAXATM), JBND(MAXATM), NBLST(MAXPR), IPOF(MAXATM)\n\
         !$TARGET MD_XINIT\n\
         \x20 DO I = 1, NATOM\n\
         \x20   X(I) = REAL(I) * 0.5\n\
         \x20   V(I) = 0.0\n\
         \x20   F(I) = 0.0\n\
         \x20 ENDDO\n\
         \x20 DO K = 1, NBOND\n\
         \x20   IBND(K) = K\n\
         \x20   JBND(K) = K + 1\n\
         \x20 ENDDO\n\
         \x20 NPP = NPAIR / NATOM\n\
         \x20 DO I = 1, NATOM\n\
         \x20   IPOF(I) = (I - 1) * NPP\n\
         \x20   DO K = 1, NPP\n\
         \x20     NBLST(IPOF(I) + K) = MOD(I + K * 7, NATOM) + 1\n\
         \x20   ENDDO\n\
         \x20 ENDDO\n\
         \x20 RETURN\n\
         END\n\n",
        maxatm = p.maxatm(),
        maxpr = p.maxpr(),
    );

    // ---- Force evaluation -----------------------------------------------------
    let _ = write!(
        s,
        "SUBROUTINE FORCE\n\
         {CTRL}\
         \x20 PARAMETER (MAXATM = {maxatm}, MAXPR = {maxpr})\n\
         \x20 COMMON /CRDS/ X(MAXATM), V(MAXATM), F(MAXATM)\n\
         \x20 COMMON /TOPO/ IBND(MAXATM), JBND(MAXATM), NBLST(MAXPR), IPOF(MAXATM)\n\
         !$TARGET FRC_CLEAR\n\
         \x20 DO I = 1, NATOM\n\
         \x20   F(I) = 0.0\n\
         \x20 ENDDO\n\
         ! Nonbonded: per-atom neighbor-list gather (reads indirect,\n\
         ! writes direct) — hand-parallel over atoms.\n\
         !$TARGET NB_FORCE\n\
         \x20 DO I = 1, NATOM\n\
         \x20   FI = 0.0\n\
         \x20   DO K = 1, NPAIR / NATOM\n\
         \x20     J = NBLST(IPOF(I) + K)\n\
         \x20     D = X(I) - X(J)\n\
         \x20     FI = FI + D / (1.0 + D * D)\n\
         \x20   ENDDO\n\
         \x20   F(I) = F(I) + FI\n\
         \x20 ENDDO\n\
         ! Bonded terms: scatter through partner tables (3rd-law update).\n\
         !$TARGET BOND_FRC\n\
         \x20 DO K = 1, NBOND\n\
         \x20   I = IBND(K)\n\
         \x20   J = JBND(K)\n\
         \x20   D = X(J) - X(I)\n\
         \x20   F(I) = F(I) + D * 0.1\n\
         \x20   F(J) = F(J) - D * 0.1\n\
         \x20 ENDDO\n\
         !$TARGET ANGL_FRC\n\
         \x20 DO K = 1, NBOND - 1\n\
         \x20   I = IBND(K)\n\
         \x20   J = JBND(K + 1)\n\
         \x20   F(I) = F(I) + (X(J) - X(I)) * 0.01\n\
         \x20 ENDDO\n\
         \x20 RETURN\n\
         END\n\n",
        maxatm = p.maxatm(),
        maxpr = p.maxpr(),
    );

    // ---- MD / minimization drivers ---------------------------------------------
    let _ = write!(
        s,
        "SUBROUTINE RUNMD\n\
         {CTRL}\
         \x20 PARAMETER (MAXATM = {maxatm}, MAXPR = {maxpr})\n\
         \x20 COMMON /CRDS/ X(MAXATM), V(MAXATM), F(MAXATM)\n\
         \x20 DO ISTEP = 1, NSTEP\n\
         \x20   CALL FORCE\n\
         !$TARGET VERLET_V\n\
         \x20   DO I = 1, NATOM\n\
         \x20     V(I) = V(I) + F(I) * 0.001\n\
         \x20   ENDDO\n\
         !$TARGET VERLET_X\n\
         \x20   DO I = 1, NATOM\n\
         \x20     X(I) = X(I) + V(I) * 0.001\n\
         \x20   ENDDO\n\
         \x20   CALL SHAKE\n\
         \x20 ENDDO\n\
         \x20 TMAX = -1.0E30\n\
         !$TARGET MD_TMAX\n\
         \x20 DO I = 1, NATOM\n\
         \x20   TMAX = MAX(TMAX, V(I) * V(I))\n\
         \x20 ENDDO\n\
         \x20 EK = 0.0\n\
         !$TARGET MD_KINE\n\
         \x20 DO I = 1, NATOM\n\
         \x20   EK = EK + V(I) * V(I)\n\
         \x20 ENDDO\n\
         \x20 WRITE(*,*) 'EK', EK\n\
         \x20 RETURN\n\
         END\n\n\
         SUBROUTINE RUNMIN\n\
         {CTRL}\
         \x20 PARAMETER (MAXATM = {maxatm}, MAXPR = {maxpr})\n\
         \x20 COMMON /CRDS/ X(MAXATM), V(MAXATM), F(MAXATM)\n\
         \x20 DO ISTEP = 1, NSTEP\n\
         \x20   CALL FORCE\n\
         !$TARGET MIN_STEP\n\
         \x20   DO I = 1, NATOM\n\
         \x20     X(I) = X(I) + F(I) * 0.0001\n\
         \x20   ENDDO\n\
         \x20 ENDDO\n\
         \x20 RETURN\n\
         END\n\n",
        maxatm = p.maxatm(),
        maxpr = p.maxpr(),
    );

    // ---- SHAKE-like constraint pass (identical gathers) -------------------------
    let _ = write!(
        s,
        "SUBROUTINE SHAKE\n\
         {CTRL}\
         \x20 PARAMETER (MAXATM = {maxatm}, MAXPR = {maxpr})\n\
         \x20 COMMON /CRDS/ X(MAXATM), V(MAXATM), F(MAXATM)\n\
         \x20 COMMON /TOPO/ IBND(MAXATM), JBND(MAXATM), NBLST(MAXPR), IPOF(MAXATM)\n\
         \x20 INTEGER IPRM({maxatm})\n\
         \x20 DO I = 1, NATOM\n\
         \x20   IPRM(I) = NATOM - I + 1\n\
         \x20 ENDDO\n\
         !$TARGET SHAKE_GATH\n\
         \x20 DO I = 1, NATOM\n\
         \x20   V(IPRM(I)) = V(IPRM(I)) * 0.9999\n\
         \x20 ENDDO\n\
         \x20 RETURN\n\
         END\n\n",
        maxatm = p.maxatm(),
        maxpr = p.maxpr(),
    );

    // ---- Ewald-like reciprocal sums + solute/solvent windows + output -----------
    let _ = write!(
        s,
        "SUBROUTINE MDOUT\n\
         {CTRL}\
         \x20 PARAMETER (MAXATM = {maxatm}, MAXPR = {maxpr})\n\
         \x20 COMMON /CRDS/ X(MAXATM), V(MAXATM), F(MAXATM)\n\
         \x20 REAL GRID(4096)\n\
         ! k-space accumulation over a 3-D grid (linearized).\n\
         !$TARGET EWALD_K\n\
         \x20 DO KZ = 1, NK\n\
         \x20   DO KY = 1, NK\n\
         \x20     DO KX = 1, NK\n\
         \x20       KG = ((KZ - 1) * NK + KY - 1) * NK + KX\n\
         \x20       GRID(KG) = REAL(KX + KY + KZ) * 0.01\n\
         \x20     ENDDO\n\
         \x20   ENDDO\n\
         \x20 ENDDO\n\
         !$TARGET EWALD_SC\n\
         \x20 DO KZ = 1, NK\n\
         \x20   DO KY = 1, NK\n\
         \x20     DO KX = 1, NK\n\
         \x20       KG = ((KZ - 1) * NK + KY - 1) * NK + KX\n\
         \x20       GRID(KG) = GRID(KG) * 0.5\n\
         \x20     ENDDO\n\
         \x20   ENDDO\n\
         \x20 ENDDO\n\
         ! Solute / solvent deck windows (validated: ISOLV >= ISOLU + NATOM).\n\
         !$TARGET SOLV_SCAL\n\
         \x20 DO I = 1, NATOM\n\
         \x20   X(ISOLV + I) = X(ISOLV + I) * 0.5 + X(ISOLU + I) * 0.5\n\
         \x20 ENDDO\n\
         !$TARGET SOLV_MIX\n\
         \x20 DO I = 1, NATOM\n\
         \x20   V(ISOLV + I) = V(ISOLV + I) + V(ISOLU + I) * 0.1\n\
         \x20 ENDDO\n\
         !$TARGET SOLV_DMP\n\
         \x20 DO I = 1, NATOM\n\
         \x20   F(ISOLV + I) = F(ISOLU + I) * 0.25\n\
         \x20 ENDDO\n\
         \x20 CALL PAIRE(X, F, NATOM)\n\
         \x20 CALL VDWMX(V, F, NATOM)\n\
         \x20 EP = 0.0\n\
         !$TARGET MD_EPOT\n\
         \x20 DO I = 1, NATOM\n\
         \x20   EP = EP + F(I) * X(I)\n\
         \x20 ENDDO\n\
         ! Dihedral cross-term sweep (heavy unrolled analysis).\n\
         !$TARGET DIHE_XTRM\n\
         \x20 DO IQ = 1, NDIH\n",
        maxatm = p.maxatm(),
        maxpr = p.maxpr(),
    );
    for t in 0..16 {
        let _ = writeln!(
            s,
            "    F(ISOLU + (IQ - 1) * 32 + {a}) = F(ISOLV + (IQ - 1) * 32 + {b}) * 0.5 + X(ISOLV + (IQ - 1) * 32 + {a}) * 0.1",
            a = t + 1,
            b = t + 2,
        );
    }
    s.push_str(
        "  ENDDO\n\
         \x20 WRITE(*,*) 'EP', EP\n\
         \x20 RETURN\n\
         END\n\n\
         SUBROUTINE PAIRE(A, B, N)\n\
         \x20 REAL A(*), B(*)\n\
         \x20 INTEGER N\n\
         !$TARGET MD_PAIRE\n\
         \x20 DO K = 1, N\n\
         \x20   B(K) = B(K) + A(K) * 0.001\n\
         \x20 ENDDO\n\
         \x20 RETURN\n\
         END\n\n\
         SUBROUTINE VDWMX(A, B, N)\n\
         \x20 REAL A(*), B(*)\n\
         \x20 INTEGER N\n\
         !$TARGET MD_VDWMX\n\
         \x20 DO K = 1, N\n\
         \x20   B(K) = A(K) * 0.5 + B(K) * 0.5\n\
         \x20 ENDDO\n\
         \x20 RETURN\n\
         END\n\n",
    );

    Workload {
        name: "SANDER".into(),
        source: s,
        deck: vec![
            DeckValue::Int(p.imin),
            DeckValue::Int(p.natom),
            DeckValue::Int(p.nstep),
            DeckValue::Int(p.nbond()),
            DeckValue::Int(p.npair()),
            DeckValue::Int(p.isolu()),
            DeckValue::Int(p.isolv()),
            DeckValue::Int(8),
            DeckValue::Int(((p.natom - 32) / 32).max(1)),
        ],
        targets: targets(),
    }
}

/// The SANDER target manifest (~20 loops, indirection-heavy).
pub fn targets() -> Vec<TargetSpec> {
    vec![
        TargetSpec::new("MD_XINIT", C::Autoparallelized, true),
        TargetSpec::new("FRC_CLEAR", C::Autoparallelized, true),
        TargetSpec::new("NB_FORCE", C::Autoparallelized, true),
        TargetSpec::new("BOND_FRC", C::Indirection, false),
        TargetSpec::new("ANGL_FRC", C::Indirection, true),
        TargetSpec::new("VERLET_V", C::Autoparallelized, true),
        TargetSpec::new("VERLET_X", C::Autoparallelized, true),
        TargetSpec::new("MD_TMAX", C::Autoparallelized, true),
        TargetSpec::new("MD_KINE", C::Autoparallelized, true),
        TargetSpec::new("MIN_STEP", C::Autoparallelized, true),
        TargetSpec::new("SHAKE_GATH", C::Indirection, true),
        TargetSpec::new("EWALD_K", C::SymbolAnalysis, true),
        TargetSpec::new("EWALD_SC", C::SymbolAnalysis, true),
        TargetSpec::new("SOLV_SCAL", C::Rangeless, true),
        TargetSpec::new("SOLV_MIX", C::Rangeless, true),
        TargetSpec::new("SOLV_DMP", C::Rangeless, true),
        TargetSpec::new("MD_EPOT", C::Autoparallelized, true),
        TargetSpec::new("DIHE_XTRM", C::Complexity, false),
        TargetSpec::new("MD_PAIRE", C::Aliasing, true),
        TargetSpec::new("MD_VDWMX", C::Aliasing, true),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_resolves() {
        let w = suite(DataSize::Test);
        apar_minifort::frontend(&w.source).unwrap_or_else(|e| panic!("{}", e));
    }

    #[test]
    fn target_scale_matches_paper() {
        let n = targets().len();
        assert!((15..=25).contains(&n), "targets = {}", n);
    }
}

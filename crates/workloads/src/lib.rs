//! Synthetic industrial-grade application suites.
//!
//! The paper's experiments run over five codes: SEISMIC (seismic
//! processing), GAMESS (quantum chemistry), SANDER (molecular dynamics),
//! the PERFECT BENCHMARKS, and LINPACK. None of the first three is
//! publicly redistributable, so this crate generates MiniFort
//! application suites that reproduce the *structural properties* the
//! paper measures:
//!
//! * SEISMIC's reusable module framework (MODULEPREP/MODULECOMP
//!   templates, a SEISPROC driver, shared RA/SA/OTRA storage, C-language
//!   allocation and I/O glue) — §2.2–2.4;
//! * GAMESS's user-selected wavefunction multifunctionality and the
//!   shared `X` array reshaped across `LVEC` offsets — §2.1, §2.3;
//! * SANDER's `imin` dispatch and neighbor-list indirection;
//! * PERFECT's extracted-kernel shape (static sizes, shallow nesting);
//! * LINPACK's trivially analyzable vector routines.
//!
//! Every hand-parallelizable loop carries a `!$TARGET` marker and a
//! manifest entry recording the hindrance category the baseline
//! compiler is expected to report (Figure 5) and whether the
//! full-capability compiler recovers it.

pub mod gamess;
pub mod linpack;
pub mod perfect;
pub mod sander;
pub mod seismic;

use apar_core::Classification;
/// A value in an input deck, consumed by `READ(*,*)` in order.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DeckValue {
    Int(i64),
    Real(f64),
}

/// Expected analysis outcome for one `!$TARGET` loop.
#[derive(Clone, Debug)]
pub struct TargetSpec {
    pub name: String,
    /// Expected classification under the 2008 baseline profile.
    pub expected_baseline: Classification,
    /// Whether the full-capability compiler parallelizes it.
    pub recovered_by_full: bool,
}

impl TargetSpec {
    pub fn new(name: &str, expected: Classification, recovered: bool) -> Self {
        TargetSpec {
            name: name.to_string(),
            expected_baseline: expected,
            recovered_by_full: recovered,
        }
    }
}

/// A generated application: source, input deck, and target manifest.
#[derive(Clone, Debug)]
pub struct Workload {
    pub name: String,
    pub source: String,
    pub deck: Vec<DeckValue>,
    pub targets: Vec<TargetSpec>,
}

/// Dataset scale mirroring the paper's SMALL / MEDIUM decks (MEDIUM is
/// roughly an order of magnitude more memory).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DataSize {
    Small,
    Medium,
    /// Tiny decks for unit tests.
    Test,
}

/// Parallelization variant of a generated program.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Variant {
    /// Plain serial source (the compiler's input).
    Serial,
    /// Manual `!$OMP PARALLEL DO` on the outermost parallel loops.
    OpenMp,
    /// Message-passing version (ranks over `MP*` runtime calls).
    Mpi,
}

/// All five suites, for the compile-time figures. PERFECT contributes
/// its codes individually (they are compiled separately and averaged,
/// as in the paper).
pub fn all_suites() -> Vec<Workload> {
    let mut v = vec![
        seismic::full_suite(DataSize::Small, Variant::Serial),
        gamess::suite(DataSize::Small),
        sander::suite(DataSize::Small),
    ];
    v.extend(perfect::codes());
    v.push(linpack::suite());
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_suites_parse_and_resolve() {
        for w in all_suites() {
            apar_minifort::frontend(&w.source).unwrap_or_else(|e| {
                let snippet: String = w
                    .source
                    .lines()
                    .enumerate()
                    .map(|(i, l)| format!("{:4} {}\n", i + 1, l))
                    .collect();
                panic!("{} failed: {}\n{}", w.name, e, snippet)
            });
        }
    }

    #[test]
    fn target_markers_match_manifests() {
        for w in all_suites() {
            let rp = apar_minifort::frontend(&w.source).expect("frontend");
            let mut marked: Vec<String> = Vec::new();
            for u in &rp.program.units {
                for (t, _) in u.target_loops() {
                    marked.push(t);
                }
            }
            marked.sort();
            let mut expected: Vec<String> =
                w.targets.iter().map(|t| t.name.clone()).collect();
            expected.sort();
            assert_eq!(marked, expected, "{} manifest mismatch", w.name);
        }
    }
}

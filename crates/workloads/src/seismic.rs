//! The SEISMIC application suite.
//!
//! Mirrors the structure the paper describes: a main program that reads
//! an input deck and validates it, a `SEISPREP` relations routine, a
//! C-language `CPROC` that owns the working storage and launches the
//! Fortran `SEISPROC` driver (§2.4), a driver loop dispatching on
//! user-selected modules (§2.1/2.2), and four computational modules —
//! data generation (DGEN), CMP stacking (STAK), 3-D FFT (M3FK), and
//! finite differencing (FDIF) — that follow the MODULEPREP/MODULECOMP
//! template and share the OTRA/RA/SA storage (§2.3).
//!
//! Every hand-parallelizable loop carries `!$TARGET`; the OpenMP variant
//! adds `!$OMP PARALLEL DO` exactly where a human would (including the
//! hand rewrite of the `KOFF` running offset in STAK). The MPI variant
//! is a set of standalone distributed programs per component — industry
//! keeps separate message-passing versions, as the paper notes.

use crate::{DataSize, DeckValue, TargetSpec, Variant, Workload};
use apar_core::Classification as C;
use std::fmt::Write as _;

/// Deck-level problem dimensions.
#[derive(Clone, Copy, Debug)]
pub struct SeismicParams {
    pub ngath: i64,
    pub nfold: i64,
    pub nsamp: i64,
    pub nx: i64,
    pub ny: i64,
    pub nt: i64,
    pub ntime: i64,
}

impl SeismicParams {
    pub fn for_size(size: DataSize) -> Self {
        match size {
            DataSize::Test => SeismicParams {
                ngath: 4,
                nfold: 2,
                nsamp: 32,
                nx: 4,
                // NY >= ranks + 2 keeps the MPI row decomposition
                // non-degenerate on 4 ranks.
                ny: 8,
                nt: 8,
                ntime: 3,
            },
            DataSize::Small => SeismicParams {
                ngath: 48,
                nfold: 12,
                nsamp: 1250,
                nx: 8,
                ny: 16,
                nt: 512,
                ntime: 600,
            },
            // MEDIUM: roughly 10x the memory of SMALL.
            DataSize::Medium => SeismicParams {
                ngath: 120,
                nfold: 24,
                nsamp: 2500,
                nx: 16,
                ny: 32,
                nt: 1024,
                ntime: 1200,
            },
        }
    }

    pub fn ntrc(&self) -> i64 {
        self.ngath * self.nfold
    }

    /// OTRA capacity (words).
    pub fn capo(&self) -> i64 {
        self.ntrc() * self.nsamp + 4 * self.nsamp + 64
    }

    /// RA capacity.
    pub fn capr(&self) -> i64 {
        let fft = 2 * self.nx * self.ny * self.nt;
        let fd = 3 * self.nbuf();
        (self.ntrc() * self.nsamp).max(fft).max(fd) + 64
    }

    /// SA capacity.
    pub fn caps(&self) -> i64 {
        4 * self.nsamp.max(2 * self.nt).max(self.nx * self.ny) + 64
    }

    /// FDIF plane stride (deck value, validated >= NX*NY).
    pub fn nbuf(&self) -> i64 {
        self.nx * self.ny + 8
    }

    /// Deck filter window offsets (JOFLT >= IOFLT + NSAMP holds).
    pub fn ioflt(&self) -> i64 {
        0
    }
    pub fn joflt(&self) -> i64 {
        2 * self.nsamp
    }
    /// Cross-correlation window count (NXCOR * 32 <= NSAMP).
    pub fn nxcor(&self) -> i64 {
        (self.nsamp / 32 - 1).max(1)
    }
}

/// The four measured components of Figure 1.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Component {
    DataGen,
    Stack,
    Fft3d,
    FinDiff,
}

impl Component {
    pub fn label(&self) -> &'static str {
        match self {
            Component::DataGen => "data gen.",
            Component::Stack => "stack",
            Component::Fft3d => "3D FFT",
            Component::FinDiff => "finite diff.",
        }
    }

    /// Module-selection deck for this component (DGEN feeds STAK).
    fn modsel(&self) -> Vec<i64> {
        match self {
            Component::DataGen => vec![1],
            Component::Stack => vec![1, 2],
            Component::Fft3d => vec![3],
            Component::FinDiff => vec![4],
        }
    }
}

fn omp(v: Variant, clauses: &str) -> String {
    if v == Variant::OpenMp {
        format!("!$OMP PARALLEL DO{}\n", clauses)
    } else {
        String::new()
    }
}

/// Used RA extent for a module schedule (what CPROC must zero).
fn nwork(p: &SeismicParams, modsel: &[i64]) -> i64 {
    modsel
        .iter()
        .map(|m| match m {
            1 | 2 => p.ngath.max(p.ntrc()) * p.nsamp,
            3 => 2 * p.nx * p.ny * p.nt,
            4 => 3 * p.nbuf(),
            _ => 1,
        })
        .max()
        .unwrap_or(1)
        .max(p.ngath * p.nsamp) // SEISOUT checksums RA(1..NGATH*NSAMP)
}

/// Builds the deck for a given module sequence.
fn deck(p: &SeismicParams, modsel: &[i64]) -> Vec<DeckValue> {
    assert!(modsel.len() <= 8);
    let mut d = vec![
        DeckValue::Int(p.ngath),
        DeckValue::Int(p.nfold),
        DeckValue::Int(p.nsamp),
        DeckValue::Int(p.nx),
        DeckValue::Int(p.ny),
        DeckValue::Int(p.nt),
        DeckValue::Int(p.ntime),
        DeckValue::Int(p.ioflt()),
        DeckValue::Int(p.joflt()),
        DeckValue::Int(p.nbuf()),
        DeckValue::Int(p.nxcor()),
        DeckValue::Int(nwork(p, modsel)),
        DeckValue::Int(modsel.len() as i64),
    ];
    for k in 0..8 {
        d.push(DeckValue::Int(*modsel.get(k).unwrap_or(&0)));
    }
    d
}

const CTRL: &str = "  COMMON /CTRL/ NGATH, NFOLD, NSAMP, NX, NY, NT, NTIME, IOFLT, JOFLT, NBUF, NXCOR, NWORK, NSTEPS, MODSEL(8), NTRC, LDIM, MAXTRC, NRA, NSA\n";
const PHYS: &str = "  COMMON /PHYS/ DT, DX, VELO\n";

/// MAIN + SEISPREP + C glue + SEISPROC + SEISOUT.
fn framework(p: &SeismicParams) -> String {
    let mut s = String::new();
    // ---- MAIN ---------------------------------------------------------
    s.push_str("PROGRAM SEISMAIN\n");
    s.push_str(CTRL);
    s.push_str(PHYS);
    s.push_str(
        "  READ(*,*) NGATH, NFOLD, NSAMP\n\
         \x20 READ(*,*) NX, NY, NT, NTIME\n\
         \x20 READ(*,*) IOFLT, JOFLT, NBUF, NXCOR, NWORK\n\
         \x20 READ(*,*) NSTEPS\n\
         \x20 READ(*,*) MODSEL(1), MODSEL(2), MODSEL(3), MODSEL(4), MODSEL(5), MODSEL(6), MODSEL(7), MODSEL(8)\n\
         \x20 IF (NGATH .LT. 1) STOP\n\
         \x20 IF (NGATH .GT. 4096) STOP\n\
         \x20 IF (NFOLD .LT. 1) STOP\n\
         \x20 IF (NFOLD .GT. 64) STOP\n\
         \x20 IF (NSAMP .LT. 8) STOP\n\
         \x20 IF (NSAMP .GT. 8192) STOP\n\
         \x20 IF (NX .LT. 4) STOP\n\
         \x20 IF (NX .GT. 512) STOP\n\
         \x20 IF (NY .LT. 4) STOP\n\
         \x20 IF (NY .GT. 512) STOP\n\
         \x20 IF (NT .LT. 8) STOP\n\
         \x20 IF (NT .GT. 4096) STOP\n\
         \x20 IF (NTIME .LT. 1) STOP\n\
         \x20 IF (NTIME .GT. 100000) STOP\n\
         \x20 IF (IOFLT .LT. 0) STOP\n\
         \x20 IF (JOFLT .LT. IOFLT + NSAMP) STOP\n\
         \x20 IF (NBUF .LT. NX * NY) STOP\n\
         \x20 IF (NXCOR .LT. 1) STOP\n\
         \x20 IF (NWORK .LT. 1) STOP\n\
         \x20 IF (NSTEPS .LT. 1) STOP\n\
         \x20 IF (NSTEPS .GT. 8) STOP\n\
         \x20 NTRC = NGATH * NFOLD\n\
         \x20 DT = 0.002\n\
         \x20 DX = 10.0\n\
         \x20 VELO = 2000.0\n\
         \x20 CALL SEISPREP\n\
         \x20 CALL CPROC\n\
         END\n\n",
    );
    // ---- SEISPREP: template relations ----------------------------------
    s.push_str("SUBROUTINE SEISPREP\n");
    s.push_str(CTRL);
    s.push_str(
        "  LDIM = NSAMP\n\
         \x20 MAXTRC = NTRC\n\
         \x20 NRA = LDIM * MAXTRC\n\
         \x20 NSA = 4 * LDIM\n\
         \x20 RETURN\n\
         END\n\n",
    );
    // ---- CPROC: C-language allocator ------------------------------------
    let _ = write!(
        s,
        "!LANG C\n\
         SUBROUTINE CPROC\n\
         {CTRL}\
         \x20 PARAMETER (MCAPO = {capo}, MCAPR = {capr}, MCAPS = {caps})\n\
         \x20 COMMON /WORK/ OTRA(MCAPO), RA(MCAPR), SA(MCAPS)\n\
         \x20 DO I = NTRC * NSAMP + 1, NTRC * NSAMP + 4 * NSAMP\n\
         \x20   OTRA(I) = 0.0\n\
         \x20 ENDDO\n\
         \x20 DO I = 1, MCAPS\n\
         \x20   SA(I) = 0.0\n\
         \x20 ENDDO\n\
         \x20 NWORK = NWORK\n\
         \x20 CALL SEISPROC(OTRA, RA, SA)\n\
         END\n\n",
        capo = p.capo(),
        capr = p.capr(),
        caps = p.caps(),
    );
    // ---- C file I/O glue --------------------------------------------------
    s.push_str(
        "!LANG C\n\
         SUBROUTINE CWRITE(BUF, N)\n\
         \x20 REAL BUF(*)\n\
         \x20 INTEGER N\n\
         \x20 CK = 0.0\n\
         \x20 DO I = 1, N, 8\n\
         \x20   CK = CK + BUF(I)\n\
         \x20 ENDDO\n\
         \x20 WRITE(*,*) 'CWRITE', CK\n\
         END\n\n\
         !LANG C\n\
         SUBROUTINE CREAD(BUF, N, ISEED)\n\
         \x20 REAL BUF(*)\n\
         \x20 INTEGER N, ISEED\n\
         \x20 DO I = 1, N\n\
         \x20   BUF(I) = REAL(MOD(I * 1103 + ISEED, 1000)) * 0.001\n\
         \x20 ENDDO\n\
         END\n\n",
    );
    // ---- SEISPROC: the driver (multifunctional dispatch) -----------------
    s.push_str(
        "SUBROUTINE SEISPROC(OTRA, RA, SA)\n\
         \x20 REAL OTRA(*), RA(*), SA(*)\n",
    );
    s.push_str(CTRL);
    s.push_str(
        "  NTRI = NTRC\n\
         \x20 DO ISTEP = 1, NSTEPS\n\
         \x20   MODE = MODSEL(ISTEP)\n\
         \x20   IF (MODE .EQ. 1) THEN\n\
         \x20     CALL DGENP\n\
         \x20     CALL DGENB(OTRA, RA, SA, NTRI, NTRO)\n\
         \x20   ELSE IF (MODE .EQ. 2) THEN\n\
         \x20     CALL STAKP\n\
         \x20     CALL STAKB(OTRA, RA, SA, NTRI, NTRO)\n\
         \x20   ELSE IF (MODE .EQ. 3) THEN\n\
         \x20     CALL M3FKP\n\
         \x20     CALL M3FKB(OTRA, RA, SA, NTRI, NTRO)\n\
         \x20   ELSE IF (MODE .EQ. 4) THEN\n\
         \x20     CALL FDIFP\n\
         \x20     CALL FDIFB(OTRA, RA, SA, NTRI, NTRO)\n\
         \x20   ENDIF\n\
         \x20   NTRI = NTRO\n\
         \x20 ENDDO\n\
         \x20 CALL SEISOUT(RA, SA)\n\
         \x20 RETURN\n\
         END\n\n\
         SUBROUTINE SEISOUT(RA, SA)\n\
         \x20 REAL RA(*), SA(*)\n",
    );
    s.push_str(CTRL);
    s.push_str(
        "  CALL CWRITE(RA, NGATH * NSAMP)\n\
         \x20 WRITE(*,*) 'SA1', SA(1)\n\
         \x20 RETURN\n\
         END\n\n",
    );
    s
}

/// The DGEN (data generation) module.
fn dgen(v: Variant) -> String {
    let mut s = String::new();
    s.push_str("SUBROUTINE DGENP\n");
    s.push_str(CTRL);
    s.push_str(
        "  LDIM = NSAMP\n\
         \x20 MAXTRC = NTRC\n\
         \x20 NRA = LDIM * MAXTRC\n\
         \x20 NSA = 4 * LDIM\n\
         \x20 RETURN\n\
         END\n\n",
    );
    s.push_str("SUBROUTINE DGENB(OTRA, RA, SA, NTRI, NTRO)\n");
    s.push_str("  REAL OTRA(*), RA(*), SA(*)\n  INTEGER NTRI, NTRO\n");
    s.push_str(CTRL);
    s.push_str(PHYS);
    // Simple scratch loop (baseline-parallelizable).
    let _ = write!(
        s,
        "!$TARGET DGEN_SCRATCH\n{}",
        omp(v, "")
    );
    s.push_str(
        "  DO IS = 1, NSAMP\n\
         \x20   SA(IS) = 0.0\n\
         \x20 ENDDO\n",
    );
    // Main synthesis: Ricker wavelets per trace, through the per-trace
    // helper (a section actual: the baseline cannot relate the callee's
    // view of OTRA to the caller's — §2.3).
    let _ = write!(s, "!$TARGET DGEN_TRACES\n{}", omp(v, " PRIVATE(IOFF, T0)"));
    s.push_str(
        "  DO ITR = 1, NTRC\n\
         \x20   IOFF = (ITR - 1) * NSAMP\n\
         \x20   T0 = DT * REAL(MOD(ITR - 1, NFOLD) * 8 + 8)\n\
         \x20   CALL DGWAVE(OTRA(IOFF + 1), NSAMP, 1, T0)\n\
         \x20 ENDDO\n",
    );
    // Gain application (same shape).
    let _ = write!(s, "!$TARGET DGEN_GAIN\n{}", omp(v, " PRIVATE(IOFF, IS)"));
    s.push_str(
        "  DO ITR = 1, NTRC\n\
         \x20   IOFF = (ITR - 1) * NSAMP\n\
         \x20   DO IS = 1, NSAMP\n\
         \x20     OTRA(IOFF + IS) = OTRA(IOFF + IS) * (1.0 + REAL(IS) * 0.002)\n\
         \x20   ENDDO\n\
         \x20 ENDDO\n",
    );
    // Deck-offset filter (rangeless in the baseline).
    let _ = write!(s, "!$TARGET DGEN_FILT\n{}", omp(v, ""));
    s.push_str(
        "  DO IS = 1, NSAMP\n\
         \x20   OTRA(JOFLT + IS) = OTRA(JOFLT + IS) * 0.9 + OTRA(IOFLT + IS) * 0.1\n\
         \x20 ENDDO\n",
    );
    // Taper over the front half of the filter window (rangeless).
    let _ = write!(s, "!$TARGET DGEN_TAPR\n{}", omp(v, ""));
    s.push_str(
        "  DO IS = 1, NSAMP / 2\n\
         \x20   OTRA(JOFLT + IS) = OTRA(JOFLT + IS) * 0.98 + OTRA(IOFLT + IS) * 0.02\n\
         \x20 ENDDO\n",
    );
    // Second deck-offset utility (smoothing into the filter window).
    let _ = write!(s, "!$TARGET DGEN_DIFF\n{}", omp(v, ""));
    s.push_str(
        "  DO IS = 1, NSAMP\n\
         \x20   OTRA(JOFLT + IS) = OTRA(JOFLT + IS) - OTRA(IOFLT + IS) * 0.05\n\
         \x20 ENDDO\n",
    );
    // Energy norm (reduction).
    let _ = write!(s, "  S = 0.0\n!$TARGET DGEN_NORM\n{}", omp(v, " REDUCTION(+:S)"));
    s.push_str(
        "  DO K = 1, NTRC * NSAMP\n\
         \x20   S = S + OTRA(K) * OTRA(K)\n\
         \x20 ENDDO\n\
         \x20 SA(1) = SQRT(S)\n",
    );
    // Cross-correlation monster (compile-time complexity): each
    // iteration owns a disjoint 32-word window, but proving that for
    // every pair of the unrolled references exhausts the op budget.
    let _ = write!(s, "!$TARGET DGEN_XCOR\n{}", omp(v, ""));
    s.push_str("  DO IW = 1, NXCOR\n");
    for k in 0..20 {
        let _ = writeln!(
            s,
            "    OTRA(IOFLT + (IW - 1) * 32 + {k}) = OTRA(JOFLT + (IW - 1) * 32 + {k1}) * 0.5 + OTRA(JOFLT + (IW - 1) * 32 + {k}) * 0.25",
            k = k + 1,
            k1 = k + 2,
        );
    }
    s.push_str("  ENDDO\n");
    // Aliasing utilities (framework formals passed on).
    let _ = write!(s, "  CALL SAGC(OTRA, SA, 4, NSAMP)\n  CALL SBLD(OTRA, RA, 4, NSAMP)\n  CALL SFLT(OTRA, SA, 2, NSAMP)\n");
    // Archive via C I/O.
    s.push_str(
        "  CALL CWRITE(OTRA, NTRC * NSAMP)\n\
         \x20 NTRO = NTRI\n\
         \x20 RETURN\n\
         END\n\n",
    );
    // Per-trace wavelet kernel (module template helper).
    s.push_str(
        "SUBROUTINE DGWAVE(TR, NS, INC, T0)\n\
         \x20 REAL TR(*)\n\
         \x20 INTEGER NS, INC\n",
    );
    s.push_str(PHYS);
    // Ricker source through a one-pole smoothing filter: the recursive
    // update makes the sample loop genuinely serial (parallelism lives
    // at the trace level, where the hand annotations put it).
    s.push_str(
        "  W = 0.0\n\
         \x20 DO IS = 1, NS\n\
         \x20   T = REAL(IS - 1) * DT - T0\n\
         \x20   ARG = 900.0 * T * T\n\
         \x20   AMP = (1.0 - 2.0 * ARG) * EXP(-ARG)\n\
         \x20   W = W * 0.35 + AMP * 0.65\n\
         \x20   TR(1 + (IS - 1) * INC) = W\n\
         \x20 ENDDO\n\
         \x20 RETURN\n\
         END\n\n",
    );
    s
}

/// The STAK (CMP stacking) module.
fn stak(v: Variant) -> String {
    let mut s = String::new();
    s.push_str("SUBROUTINE STAKP\n");
    s.push_str(CTRL);
    s.push_str(
        "  LDIM = NSAMP\n\
         \x20 MAXTRC = NGATH\n\
         \x20 NRA = LDIM * MAXTRC\n\
         \x20 NSA = 4 * LDIM\n\
         \x20 RETURN\n\
         END\n\n",
    );
    s.push_str("SUBROUTINE STAKB(OTRA, RA, SA, NTRI, NTRO)\n");
    s.push_str("  REAL OTRA(*), RA(*), SA(*)\n  INTEGER NTRI, NTRO\n");
    s.push_str("  REAL WRK(8192)\n  INTEGER IRVS(8192)\n");
    s.push_str(CTRL);
    // Clear the stack output.
    let _ = write!(s, "!$TARGET STAK_CLEAR\n{}", omp(v, ""));
    s.push_str(
        "  DO K = 1, NGATH * NSAMP\n\
         \x20   RA(K) = 0.0\n\
         \x20 ENDDO\n",
    );
    // Main stack. The serial source uses a running offset (induction
    // variable); the hand-parallelized version computes it per gather.
    match v {
        Variant::OpenMp => {
            let _ = write!(
                s,
                "!$TARGET STAK_GATHERS\n{}",
                omp(v, " PRIVATE(KOFF, IFO, JOFF, IS)")
            );
            s.push_str(
                "  DO IG = 1, NGATH\n\
                 \x20   KOFF = (IG - 1) * NSAMP\n\
                 \x20   DO IFO = 1, NFOLD\n\
                 \x20     JOFF = ((IG - 1) * NFOLD + IFO - 1) * NSAMP\n\
                 \x20     DO IS = 1, NSAMP\n\
                 \x20       RA(KOFF + IS) = RA(KOFF + IS) + OTRA(JOFF + IS)\n\
                 \x20     ENDDO\n\
                 \x20   ENDDO\n\
                 \x20 ENDDO\n",
            );
        }
        _ => {
            s.push_str(
                "  KOFF = 0\n\
                 !$TARGET STAK_GATHERS\n\
                 \x20 DO IG = 1, NGATH\n\
                 \x20   DO IFO = 1, NFOLD\n\
                 \x20     JOFF = ((IG - 1) * NFOLD + IFO - 1) * NSAMP\n\
                 \x20     DO IS = 1, NSAMP\n\
                 \x20       RA(KOFF + IS) = RA(KOFF + IS) + OTRA(JOFF + IS)\n\
                 \x20     ENDDO\n\
                 \x20   ENDDO\n\
                 \x20   KOFF = KOFF + NSAMP\n\
                 \x20 ENDDO\n",
            );
        }
    }
    // Normalize by fold.
    let _ = write!(s, "!$TARGET STAK_SCALE\n{}", omp(v, ""));
    s.push_str(
        "  DO K = 1, NGATH * NSAMP\n\
         \x20   RA(K) = RA(K) / REAL(NFOLD)\n\
         \x20 ENDDO\n",
    );
    // Resequencing through a permutation (indirection).
    s.push_str(
        "  DO IS = 1, NSAMP\n\
         \x20   IRVS(IS) = NSAMP - IS + 1\n\
         \x20 ENDDO\n",
    );
    let _ = write!(s, "!$TARGET STAK_RESEQ\n{}", omp(v, ""));
    s.push_str(
        "  DO IS = 1, NSAMP\n\
         \x20   WRK(IRVS(IS)) = RA(IS)\n\
         \x20 ENDDO\n",
    );
    let _ = write!(s, "!$TARGET STAK_PUTB\n{}", omp(v, ""));
    s.push_str(
        "  DO IS = 1, NSAMP\n\
         \x20   SA(IS) = WRK(IS)\n\
         \x20 ENDDO\n",
    );
    // Residual-statics shift into the deck window (rangeless).
    let _ = write!(s, "!$TARGET STAK_SHFT\n{}", omp(v, ""));
    s.push_str(
        "  DO IS = 1, NSAMP - 1\n\
         \x20   OTRA(JOFLT + IS) = OTRA(IOFLT + IS + 1) * 0.5\n\
         \x20 ENDDO\n",
    );
    // Deck-window difference (rangeless).
    let _ = write!(s, "!$TARGET STAK_MUTE\n{}", omp(v, ""));
    s.push_str(
        "  DO IS = 1, NSAMP\n\
         \x20   OTRA(JOFLT + IS) = OTRA(JOFLT + IS) - OTRA(IOFLT + IS)\n\
         \x20 ENDDO\n",
    );
    // Aliasing utilities.
    s.push_str("  CALL SMUT(RA, SA, 4, NSAMP)\n  CALL SSCL(OTRA, RA, 4, NSAMP)\n  CALL SNRM(RA, SA, 2, NSAMP)\n");
    s.push_str(
        "  CALL CWRITE(RA, NGATH * NSAMP)\n\
         \x20 NTRO = NGATH\n\
         \x20 RETURN\n\
         END\n\n",
    );
    s
}

/// The M3FK (3-D FFT) module, including the CFFT1 kernel.
fn m3fk(v: Variant) -> String {
    let mut s = String::new();
    s.push_str("SUBROUTINE M3FKP\n");
    s.push_str(CTRL);
    s.push_str(
        "  LDIM = 2 * NT\n\
         \x20 MAXTRC = NX * NY\n\
         \x20 NRA = LDIM * MAXTRC\n\
         \x20 NSA = 4 * LDIM\n\
         \x20 RETURN\n\
         END\n\n",
    );
    s.push_str("SUBROUTINE M3FKB(OTRA, RA, SA, NTRI, NTRO)\n");
    s.push_str("  REAL OTRA(*), RA(*), SA(*)\n  INTEGER NTRI, NTRO\n");
    s.push_str("  REAL CW(16384)\n");
    s.push_str(CTRL);
    // Grid synthesis (complex data viewed as stride-2 reals in RA — the
    // shared-structure reshaping of §2.3).
    let _ = write!(s, "!$TARGET M3FK_GRID\n{}", omp(v, " PRIVATE(KOFF, IT, PH)"));
    s.push_str(
        "  DO ICOL = 1, NX * NY\n\
         \x20   KOFF = (ICOL - 1) * 2 * NT\n\
         \x20   DO IT = 1, NT\n\
         \x20     PH = REAL(IT * ICOL) * 0.001\n\
         \x20     RA(KOFF + 2 * IT - 1) = COS(PH)\n\
         \x20     RA(KOFF + 2 * IT) = SIN(PH)\n\
         \x20   ENDDO\n\
         \x20 ENDDO\n",
    );
    // Transform along T: contiguous complex columns, section actuals.
    let _ = write!(s, "!$TARGET M3FK_TCOLS\n{}", omp(v, ""));
    s.push_str(
        "  DO ICOL = 1, NX * NY\n\
         \x20   CALL CFFT1(RA((ICOL - 1) * 2 * NT + 1), NT)\n\
         \x20 ENDDO\n",
    );
    // Transform along X: gather a strided pencil into private scratch,
    // transform, scatter back (transpose-free strided FFT).
    let _ = write!(s, "!$TARGET M3FK_XPEN\n{}", omp(v, " PRIVATE(CW, IX, KSRC)"));
    s.push_str(
        "  DO IPEN = 1, NY * NT\n\
         \x20   DO IX = 1, NX\n\
         \x20     KSRC = ((IX - 1) * NY * NT + IPEN - 1) * 2\n\
         \x20     CW(2 * IX - 1) = RA(KSRC + 1)\n\
         \x20     CW(2 * IX) = RA(KSRC + 2)\n\
         \x20   ENDDO\n\
         \x20   CALL CFFT1(CW, NX)\n\
         \x20   DO IX = 1, NX\n\
         \x20     KSRC = ((IX - 1) * NY * NT + IPEN - 1) * 2\n\
         \x20     RA(KSRC + 1) = CW(2 * IX - 1)\n\
         \x20     RA(KSRC + 2) = CW(2 * IX)\n\
         \x20   ENDDO\n\
         \x20 ENDDO\n",
    );
    // Half-grid spectral shift (linearized symbolic subscripts).
    let _ = write!(s, "!$TARGET M3FK_SHFT\n{}", omp(v, " PRIVATE(IT)"));
    s.push_str(
        "  DO ICOL = 1, NX * NY\n\
         \x20   DO IT = 1, NT\n\
         \x20     RA((ICOL - 1) * 2 * NT + 2 * IT - 1) = RA((ICOL - 1) * 2 * NT + 2 * IT - 1) * 0.999\n\
         \x20   ENDDO\n\
         \x20 ENDDO\n",
    );
    // Spectral scaling.
    let _ = write!(s, "!$TARGET M3FK_SCALE\n{}", omp(v, ""));
    s.push_str(
        "  DO K = 1, 2 * NX * NY * NT\n\
         \x20   RA(K) = RA(K) * (1.0 / REAL(NT))\n\
         \x20 ENDDO\n",
    );
    // Deck-window pad utility (rangeless).
    let _ = write!(s, "!$TARGET M3FK_PAD\n{}", omp(v, ""));
    s.push_str(
        "  DO IS = 1, NSAMP\n\
         \x20   OTRA(JOFLT + IS) = OTRA(JOFLT + IS) * 0.5 + OTRA(IOFLT + IS) * 0.5\n\
         \x20 ENDDO\n",
    );
    s.push_str("  CALL SDMP(RA, SA, 4, NSAMP)\n  CALL SWIN(OTRA, SA, 4, NSAMP)\n  CALL SCLP(RA, SA, 2, NSAMP)\n");
    s.push_str(
        "  CALL CWRITE(RA, 2 * NX * NY * NT)\n\
         \x20 NTRO = NTRI\n\
         \x20 RETURN\n\
         END\n\n",
    );
    // ---- CFFT1: in-place radix-2 complex FFT -----------------------------
    s.push_str("SUBROUTINE CFFT1(R, N)\n");
    s.push_str("  REAL R(*)\n  INTEGER N\n  INTEGER IBR(8192)\n");
    // Bit-reversal table by doubling.
    s.push_str(
        "  NBR = 1\n\
         \x20 IBR(1) = 0\n\
         \x20 DO WHILE (NBR .LT. N)\n\
         \x20   DO K = 1, NBR\n\
         \x20     IBR(K) = IBR(K) * 2\n\
         \x20     IBR(K + NBR) = IBR(K) + 1\n\
         \x20   ENDDO\n\
         \x20   NBR = NBR * 2\n\
         \x20 ENDDO\n",
    );
    // Parallel-safe swap pass (each involution pair touched once).
    let _ = write!(s, "!$TARGET M3FK_BREV\n{}", omp(v, " PRIVATE(J, TR, TI)"));
    s.push_str(
        "  DO I = 1, N\n\
         \x20   J = IBR(I) + 1\n\
         \x20   IF (J .GT. I) THEN\n\
         \x20     TR = R(2 * J - 1)\n\
         \x20     TI = R(2 * J)\n\
         \x20     R(2 * J - 1) = R(2 * I - 1)\n\
         \x20     R(2 * J) = R(2 * I)\n\
         \x20     R(2 * I - 1) = TR\n\
         \x20     R(2 * I) = TI\n\
         \x20   ENDIF\n\
         \x20 ENDDO\n",
    );
    // Butterfly stages.
    s.push_str("  LE2 = 1\n  DO WHILE (LE2 .LT. N)\n    LE = LE2 * 2\n");
    s.push_str(
        "    ANG = -3.14159265 / REAL(LE2)\n\
         \x20   WPR = COS(ANG)\n\
         \x20   WPI = SIN(ANG)\n\
         \x20   NGRP = N / LE\n",
    );
    let _ = write!(
        s,
        "!$TARGET M3FK_BFLY\n{}",
        omp(v, " PRIVATE(I0, WR, WI, K, I1, I2, TR, TI, TW)")
    );
    s.push_str(
        "    DO IGRP = 1, NGRP\n\
         \x20     I0 = (IGRP - 1) * LE\n\
         \x20     WR = 1.0\n\
         \x20     WI = 0.0\n\
         \x20     DO K = 1, LE2\n\
         \x20       I1 = I0 + K\n\
         \x20       I2 = I1 + LE2\n\
         \x20       TR = WR * R(2 * I2 - 1) - WI * R(2 * I2)\n\
         \x20       TI = WR * R(2 * I2) + WI * R(2 * I2 - 1)\n\
         \x20       R(2 * I2 - 1) = R(2 * I1 - 1) - TR\n\
         \x20       R(2 * I2) = R(2 * I1) - TI\n\
         \x20       R(2 * I1 - 1) = R(2 * I1 - 1) + TR\n\
         \x20       R(2 * I1) = R(2 * I1) + TI\n\
         \x20       TW = WR\n\
         \x20       WR = TW * WPR - WI * WPI\n\
         \x20       WI = TW * WPI + WI * WPR\n\
         \x20     ENDDO\n\
         \x20   ENDDO\n\
         \x20   LE2 = LE\n\
         \x20 ENDDO\n\
         \x20 RETURN\n\
         END\n\n",
    );
    s
}

/// The FDIF (finite difference) module.
fn fdif(v: Variant) -> String {
    let mut s = String::new();
    s.push_str("SUBROUTINE FDIFP\n");
    s.push_str(CTRL);
    s.push_str(
        "  LDIM = NX\n\
         \x20 MAXTRC = NY\n\
         \x20 NRA = 3 * NBUF\n\
         \x20 NSA = 4 * NX\n\
         \x20 RETURN\n\
         END\n\n",
    );
    s.push_str("SUBROUTINE FDIFB(OTRA, RA, SA, NTRI, NTRO)\n");
    s.push_str("  REAL OTRA(*), RA(*), SA(*)\n  INTEGER NTRI, NTRO\n");
    s.push_str(CTRL);
    s.push_str(PHYS);
    // Initialize three wavefield planes.
    let _ = write!(s, "!$TARGET FDIF_INIT\n{}", omp(v, " PRIVATE(IX, K)"));
    s.push_str(
        "  DO IY = 1, NY\n\
         \x20   DO IX = 1, NX\n\
         \x20     K = (IY - 1) * NX + IX\n\
         \x20     RA(K) = 0.0\n\
         \x20     RA(NBUF + K) = 0.0\n\
         \x20     RA(2 * NBUF + K) = 0.0\n\
         \x20   ENDDO\n\
         \x20 ENDDO\n",
    );
    // Point source.
    s.push_str("  RA(NBUF + (NY / 2 - 1) * NX + NX / 2) = 1.0\n");
    s.push_str("  C2 = (VELO * DT / DX) * (VELO * DT / DX) * 0.2\n");
    // Time stepping (serial recurrence across steps).
    s.push_str("  DO ISTEP = 1, NTIME\n");
    let _ = write!(s, "!$TARGET FDIF_ROWS\n{}", omp(v, " PRIVATE(IX, K)"));
    s.push_str(
        "    DO IY = 2, NY - 1\n\
         \x20     DO IX = 2, NX - 1\n\
         \x20       K = (IY - 1) * NX + IX\n\
         \x20       RA(2 * NBUF + K) = 2.0 * RA(NBUF + K) - RA(K) + C2 * (RA(NBUF + K - 1) + RA(NBUF + K + 1) + RA(NBUF + K - NX) + RA(NBUF + K + NX) - 4.0 * RA(NBUF + K))\n\
         \x20     ENDDO\n\
         \x20   ENDDO\n",
    );
    let _ = write!(s, "!$TARGET FDIF_SWAP\n{}", omp(v, ""));
    s.push_str(
        "    DO K = 1, NBUF\n\
         \x20     RA(K) = RA(NBUF + K)\n\
         \x20     RA(NBUF + K) = RA(2 * NBUF + K)\n\
         \x20   ENDDO\n\
         \x20 ENDDO\n",
    );
    // Absorbing-boundary damping over the live plane (simple loop).
    let _ = write!(s, "!$TARGET FDIF_DAMP\n{}", omp(v, ""));
    s.push_str(
        "  DO K = 1, NBUF\n\
         \x20   RA(NBUF + K) = RA(NBUF + K) * 0.9999\n\
         \x20 ENDDO\n",
    );
    // Field energy (reduction over reads only).
    let _ = write!(s, "  S = 0.0\n!$TARGET FDIF_ENER\n{}", omp(v, " REDUCTION(+:S)"));
    s.push_str(
        "  DO K = 1, NBUF\n\
         \x20   S = S + RA(NBUF + K) * RA(NBUF + K)\n\
         \x20 ENDDO\n\
         \x20 SA(1) = S\n\
         \x20 WRITE(*,*) 'FDE', S\n",
    );
    s.push_str("  CALL SADD(RA, SA, 4, NX)\n  CALL SSUB(OTRA, SA, 4, NX)\n  CALL SREV(RA, SA, 2, NX)\n");
    s.push_str(
        "  CALL CWRITE(RA, NBUF)\n\
         \x20 NTRO = NTRI\n\
         \x20 RETURN\n\
         END\n\n",
    );
    s
}

/// Eight small trace utilities whose formal parameters alias in the
/// baseline (the framework passes disjoint storage, but only call-site
/// analysis can prove it).
fn utilities(v: Variant) -> String {
    let specs: &[(&str, &str)] = &[
        ("SAGC", "B(K) = B(K) * 0.99 + A(K) * 0.01"),
        ("SBLD", "B(K) = B(K) + A(K) * 0.3"),
        ("SMUT", "B(K) = B(K) * 0.5 + A(K) * 0.5"),
        ("SSCL", "B(K) = A(K) * 1.25"),
        ("SDMP", "B(K) = B(K) * 0.9 + A(K) * 0.05"),
        ("SWIN", "B(K) = A(K) * 0.75 + 0.1"),
        ("SADD", "B(K) = B(K) + A(K)"),
        ("SSUB", "B(K) = B(K) - A(K) * 0.2"),
        ("SFLT", "B(K) = B(K) * 0.8 + A(K) * 0.2"),
        ("SNRM", "B(K) = A(K) * 0.5 + B(K) * 0.1"),
        ("SCLP", "B(K) = MIN(A(K), B(K))"),
        ("SREV", "B(K) = A(K) - B(K) * 0.01"),
    ];
    let mut s = String::new();
    for (name, body) in specs {
        let _ = write!(
            s,
            "SUBROUTINE {name}(A, B, NR, NC)\n\
             \x20 REAL A(*), B(*)\n\
             \x20 INTEGER NR, NC\n\
             !$TARGET SEIS_{name}\n\
             {omp}\
             \x20 DO IR = 1, NR\n\
             \x20   DO K0 = 1, NC\n\
             \x20     K = (IR - 1) * NC + K0\n\
             \x20     {body}\n\
             \x20   ENDDO\n\
             \x20 ENDDO\n\
             \x20 RETURN\n\
             END\n\n",
            name = name,
            body = body,
            omp = omp(v, " PRIVATE(K0, K)"),
        );
    }
    s
}

/// The manifest of hand-identified target loops.
pub fn targets() -> Vec<TargetSpec> {
    let mut t = vec![
        // DGEN
        TargetSpec::new("DGEN_SCRATCH", C::Autoparallelized, true),
        TargetSpec::new("DGEN_TRACES", C::AccessRepresentation, true),
        TargetSpec::new("DGEN_GAIN", C::SymbolAnalysis, true),
        TargetSpec::new("DGEN_FILT", C::Rangeless, true),
        TargetSpec::new("DGEN_TAPR", C::Rangeless, true),
        TargetSpec::new("DGEN_DIFF", C::Rangeless, true),
        TargetSpec::new("DGEN_NORM", C::Autoparallelized, true),
        TargetSpec::new("DGEN_XCOR", C::Complexity, false),
        // STAK
        TargetSpec::new("STAK_CLEAR", C::Autoparallelized, true),
        TargetSpec::new("STAK_GATHERS", C::Aliasing, true),
        TargetSpec::new("STAK_SCALE", C::Autoparallelized, true),
        TargetSpec::new("STAK_RESEQ", C::Indirection, true),
        TargetSpec::new("STAK_PUTB", C::Autoparallelized, true),
        TargetSpec::new("STAK_SHFT", C::Rangeless, true),
        TargetSpec::new("STAK_MUTE", C::Rangeless, true),
        // M3FK
        TargetSpec::new("M3FK_GRID", C::SymbolAnalysis, true),
        TargetSpec::new("M3FK_TCOLS", C::AccessRepresentation, true),
        TargetSpec::new("M3FK_XPEN", C::SymbolAnalysis, false),
        TargetSpec::new("M3FK_SHFT", C::SymbolAnalysis, true),
        TargetSpec::new("M3FK_SCALE", C::Autoparallelized, true),
        TargetSpec::new("M3FK_PAD", C::Rangeless, true),
        TargetSpec::new("M3FK_BREV", C::Indirection, false),
        TargetSpec::new("M3FK_BFLY", C::SymbolAnalysis, false),
        // FDIF
        TargetSpec::new("FDIF_INIT", C::SymbolAnalysis, true),
        TargetSpec::new("FDIF_ROWS", C::SymbolAnalysis, true),
        TargetSpec::new("FDIF_SWAP", C::Rangeless, true),
        TargetSpec::new("FDIF_DAMP", C::Autoparallelized, true),
        TargetSpec::new("FDIF_ENER", C::Autoparallelized, true),
    ];
    for name in [
        "SAGC", "SBLD", "SMUT", "SSCL", "SDMP", "SWIN", "SADD", "SSUB", "SFLT", "SNRM",
        "SCLP", "SREV",
    ] {
        t.push(TargetSpec::new(
            &format!("SEIS_{}", name),
            C::Aliasing,
            true,
        ));
    }
    t
}

/// Builds a SEISMIC program for an arbitrary module schedule.
pub fn program(p: &SeismicParams, modsel: &[i64], v: Variant, name: &str) -> Workload {
    if v == Variant::Mpi {
        panic!("use mpi_component() for the message-passing versions");
    }
    let mut source = framework(p);
    source.push_str(&dgen(v));
    source.push_str(&stak(v));
    source.push_str(&m3fk(v));
    source.push_str(&fdif(v));
    source.push_str(&utilities(v));
    Workload {
        name: name.to_string(),
        source,
        deck: deck(p, modsel),
        targets: targets(),
    }
}

/// The full application suite (all four modules in sequence).
pub fn full_suite(size: DataSize, v: Variant) -> Workload {
    let p = SeismicParams::for_size(size);
    program(&p, &[1, 2, 3, 4], v, "SEISMIC")
}

/// One measured component (Figure 1). Dimensions the component does
/// not exercise shrink to their minimum so each phase is measured on
/// its own working set.
pub fn component(c: Component, size: DataSize, v: Variant) -> Workload {
    let p = component_params(c, size);
    if v == Variant::Mpi {
        return mpi_component(c, size);
    }
    program(
        &p,
        &c.modsel(),
        v,
        &format!("SEISMIC/{}", c.label()),
    )
}

/// Per-component problem dimensions.
pub fn component_params(c: Component, size: DataSize) -> SeismicParams {
    let mut p = SeismicParams::for_size(size);
    match c {
        Component::DataGen | Component::Stack => {
            p.nx = 4;
            p.ny = 8;
            p.nt = 8;
            p.ntime = 1;
        }
        Component::Fft3d => {
            p.ngath = 4;
            p.nfold = 2;
            p.nsamp = 32;
            p.ntime = 1;
        }
        Component::FinDiff => {
            p.ngath = 4;
            p.nfold = 2;
            p.nsamp = 32;
            p.nt = 8;
            // The paper's finite-difference phase runs on a real grid;
            // the shared suite dimensions are FFT-sized.
            let (nx, ny, ntime) = match size {
                DataSize::Test => (6, 8, 3),
                DataSize::Small => (48, 48, 400),
                DataSize::Medium => (96, 96, 900),
            };
            p.nx = nx;
            p.ny = ny;
            p.ntime = ntime;
        }
    }
    p
}

/// Standalone distributed (message-passing) version of one component —
/// industry maintains separate MPI versions of each code.
pub fn mpi_component(c: Component, size: DataSize) -> Workload {
    let p = component_params(c, size);
    let source = match c {
        Component::DataGen => mpi_datagen(&p),
        Component::Stack => mpi_stack(&p),
        Component::Fft3d => mpi_fft(&p),
        Component::FinDiff => mpi_findiff(&p),
    };
    Workload {
        name: format!("SEISMIC-MPI/{}", c.label()),
        source,
        deck: deck(&p, &c.modsel()),
        targets: Vec::new(),
    }
}

const MPI_DECK_READS: &str = "  READ(*,*) NGATH, NFOLD, NSAMP\n\
    \x20 READ(*,*) NX, NY, NT, NTIME\n\
    \x20 READ(*,*) IOFLT, JOFLT, NBUF, NXCOR, NWORK\n\
    \x20 READ(*,*) NSTEPS\n\
    \x20 READ(*,*) MD1, MD2, MD3, MD4, MD5, MD6, MD7, MD8\n\
    \x20 NTRC = NGATH * NFOLD\n\
    \x20 DT = 0.002\n\
    \x20 CALL MPMYID(MYID)\n\
    \x20 CALL MPNPROC(NP)\n";

fn mpi_datagen(p: &SeismicParams) -> String {
    format!(
        "PROGRAM DGENMPI\n\
         \x20 PARAMETER (MCAPO = {capo})\n\
         \x20 COMMON /WORK/ OTRA(MCAPO)\n\
         {reads}\
         \x20 ILO = MYID * NTRC / NP + 1\n\
         \x20 IHI = (MYID + 1) * NTRC / NP\n\
         \x20 DO ITR = ILO, IHI\n\
         \x20   IOFF = (ITR - 1) * NSAMP\n\
         \x20   T0 = DT * REAL(MOD(ITR - 1, NFOLD) * 8 + 8)\n\
         \x20   W = 0.0\n\
         \x20   DO IS = 1, NSAMP\n\
         \x20     T = REAL(IS - 1) * DT - T0\n\
         \x20     ARG = 900.0 * T * T\n\
         \x20     AMP = (1.0 - 2.0 * ARG) * EXP(-ARG)\n\
         \x20     W = W * 0.35 + AMP * 0.65\n\
         \x20     OTRA(IOFF + IS) = W\n\
         \x20   ENDDO\n\
         \x20   DO IS = 1, NSAMP\n\
         \x20     OTRA(IOFF + IS) = OTRA(IOFF + IS) * (1.0 + REAL(IS) * 0.002)\n\
         \x20   ENDDO\n\
         \x20 ENDDO\n\
         ! window QC passes (small, rank 0 only, as in the framework)\n\
         \x20 IF (MYID .EQ. 0) THEN\n\
         \x20   DO IS = 1, NSAMP\n\
         \x20     OTRA(JOFLT + IS) = OTRA(JOFLT + IS) * 0.9 + OTRA(IOFLT + IS) * 0.1\n\
         \x20     OTRA(JOFLT + IS) = OTRA(JOFLT + IS) - OTRA(IOFLT + IS) * 0.05\n\
         \x20   ENDDO\n\
         \x20   DO IW = 1, NXCOR\n\
         \x20     DO K = 1, 20\n\
         \x20       OTRA(IOFLT + (IW - 1) * 32 + K) = OTRA(JOFLT + (IW - 1) * 32 + K + 1) * 0.5 + OTRA(JOFLT + (IW - 1) * 32 + K) * 0.25\n\
         \x20     ENDDO\n\
         \x20   ENDDO\n\
         \x20 ENDIF\n\
         \x20 S = 0.0\n\
         \x20 DO ITR = ILO, IHI\n\
         \x20   IOFF = (ITR - 1) * NSAMP\n\
         \x20   DO IS = 1, NSAMP\n\
         \x20     S = S + OTRA(IOFF + IS) * OTRA(IOFF + IS)\n\
         \x20   ENDDO\n\
         \x20 ENDDO\n\
         \x20 CALL MPREDS(S)\n\
         \x20 IF (MYID .EQ. 0) THEN\n\
         \x20   WRITE(*,*) 'CWRITE', S\n\
         \x20 ENDIF\n\
         END\n",
        capo = p.capo(),
        reads = MPI_DECK_READS,
    )
}

fn mpi_stack(p: &SeismicParams) -> String {
    format!(
        "PROGRAM STAKMPI\n\
         \x20 PARAMETER (MCAPO = {capo}, MCAPR = {capr})\n\
         \x20 COMMON /WORK/ OTRA(MCAPO), RA(MCAPR)\n\
         {reads}\
         \x20 IGLO = MYID * NGATH / NP + 1\n\
         \x20 IGHI = (MYID + 1) * NGATH / NP\n\
         \x20 DO IG = IGLO, IGHI\n\
         \x20   DO IFO = 1, NFOLD\n\
         \x20     ITR = (IG - 1) * NFOLD + IFO\n\
         \x20     IOFF = (ITR - 1) * NSAMP\n\
         \x20     T0 = DT * REAL(MOD(ITR - 1, NFOLD) * 8 + 8)\n\
         \x20     W = 0.0\n\
         \x20     DO IS = 1, NSAMP\n\
         \x20       T = REAL(IS - 1) * DT - T0\n\
         \x20       ARG = 900.0 * T * T\n\
         \x20       AMP = (1.0 - 2.0 * ARG) * EXP(-ARG)\n\
         \x20       W = W * 0.35 + AMP * 0.65\n\
         \x20       OTRA(IOFF + IS) = W\n\
         \x20     ENDDO\n\
         \x20     DO IS = 1, NSAMP\n\
         \x20       OTRA(IOFF + IS) = OTRA(IOFF + IS) * (1.0 + REAL(IS) * 0.002)\n\
         \x20     ENDDO\n\
         \x20   ENDDO\n\
         \x20 ENDDO\n\
         \x20 DO IG = IGLO, IGHI\n\
         \x20   KOFF = (IG - 1) * NSAMP\n\
         \x20   DO IS = 1, NSAMP\n\
         \x20     RA(KOFF + IS) = 0.0\n\
         \x20   ENDDO\n\
         \x20   DO IFO = 1, NFOLD\n\
         \x20     JOFF = ((IG - 1) * NFOLD + IFO - 1) * NSAMP\n\
         \x20     DO IS = 1, NSAMP\n\
         \x20       RA(KOFF + IS) = RA(KOFF + IS) + OTRA(JOFF + IS)\n\
         \x20     ENDDO\n\
         \x20   ENDDO\n\
         \x20   DO IS = 1, NSAMP\n\
         \x20     RA(KOFF + IS) = RA(KOFF + IS) / REAL(NFOLD)\n\
         \x20   ENDDO\n\
         \x20 ENDDO\n\
         ! trace-energy norm over the local slice (allreduced)\n\
         \x20 S2 = 0.0\n\
         \x20 DO IG = IGLO, IGHI\n\
         \x20   DO IFO = 1, NFOLD\n\
         \x20     IOFF = ((IG - 1) * NFOLD + IFO - 1) * NSAMP\n\
         \x20     DO IS = 1, NSAMP\n\
         \x20       S2 = S2 + OTRA(IOFF + IS) * OTRA(IOFF + IS)\n\
         \x20     ENDDO\n\
         \x20   ENDDO\n\
         \x20 ENDDO\n\
         \x20 CALL MPREDS(S2)\n\
         ! pipeline QC / resequencing passes (rank 0, as in the framework)\n\
         \x20 IF (MYID .EQ. 0) THEN\n\
         \x20   DO IS = 1, NSAMP\n\
         \x20     OTRA(JOFLT + IS) = OTRA(JOFLT + IS) * 0.9 + OTRA(IOFLT + IS) * 0.1\n\
         \x20     OTRA(JOFLT + IS) = OTRA(JOFLT + IS) - OTRA(IOFLT + IS)\n\
         \x20   ENDDO\n\
         \x20   DO IW = 1, NXCOR\n\
         \x20     DO K = 1, 20\n\
         \x20       OTRA(IOFLT + (IW - 1) * 32 + K) = OTRA(JOFLT + (IW - 1) * 32 + K + 1) * 0.5 + OTRA(JOFLT + (IW - 1) * 32 + K) * 0.25\n\
         \x20     ENDDO\n\
         \x20   ENDDO\n\
         \x20   DO IS = 1, NSAMP\n\
         \x20     RA(NSAMP - IS + 1) = RA(NSAMP - IS + 1) * 1.0\n\
         \x20   ENDDO\n\
         \x20 ENDIF\n\
         \x20 S = 0.0\n\
         \x20 DO IG = IGLO, IGHI\n\
         \x20   KOFF = (IG - 1) * NSAMP\n\
         \x20   DO IS = 1, NSAMP\n\
         \x20     S = S + RA(KOFF + IS)\n\
         \x20   ENDDO\n\
         \x20 ENDDO\n\
         \x20 CALL MPREDS(S)\n\
         \x20 IF (MYID .EQ. 0) THEN\n\
         \x20   WRITE(*,*) 'CWRITE', S\n\
         \x20 ENDIF\n\
         END\n",
        capo = p.capo(),
        capr = p.capr(),
        reads = MPI_DECK_READS,
    )
}

fn mpi_fft(p: &SeismicParams) -> String {
    // Columns (T-transforms) are distributed; the X-pencil pass gathers
    // the full grid first (allgather), then each rank transforms its
    // pencil slice and the results are re-gathered.
    format!(
        "PROGRAM M3FKMPI\n\
         \x20 PARAMETER (MCAPR = {capr})\n\
         \x20 COMMON /WORK/ RA(MCAPR)\n\
         \x20 REAL CW(16384)\n\
         {reads}\
         \x20 NCOL = NX * NY\n\
         \x20 ICLO = MYID * NCOL / NP + 1\n\
         \x20 ICHI = (MYID + 1) * NCOL / NP\n\
         \x20 DO ICOL = ICLO, ICHI\n\
         \x20   KOFF = (ICOL - 1) * 2 * NT\n\
         \x20   DO IT = 1, NT\n\
         \x20     PH = REAL(IT * ICOL) * 0.001\n\
         \x20     RA(KOFF + 2 * IT - 1) = COS(PH)\n\
         \x20     RA(KOFF + 2 * IT) = SIN(PH)\n\
         \x20   ENDDO\n\
         \x20   CALL CFFT1(RA(KOFF + 1), NT)\n\
         \x20 ENDDO\n\
         \x20 CALL MPALLG(RA, (ICLO - 1) * 2 * NT + 1, (ICHI - ICLO + 1) * 2 * NT)\n\
         \x20 NPEN = NY * NT\n\
         \x20 IPLO = MYID * NPEN / NP + 1\n\
         \x20 IPHI = (MYID + 1) * NPEN / NP\n\
         \x20 DO IPEN = IPLO, IPHI\n\
         \x20   DO IX = 1, NX\n\
         \x20     KSRC = ((IX - 1) * NY * NT + IPEN - 1) * 2\n\
         \x20     CW(2 * IX - 1) = RA(KSRC + 1)\n\
         \x20     CW(2 * IX) = RA(KSRC + 2)\n\
         \x20   ENDDO\n\
         \x20   CALL CFFT1(CW, NX)\n\
         \x20   DO IX = 1, NX\n\
         \x20     KSRC = ((IX - 1) * NY * NT + IPEN - 1) * 2\n\
         \x20     RA(KSRC + 1) = CW(2 * IX - 1)\n\
         \x20     RA(KSRC + 2) = CW(2 * IX)\n\
         \x20   ENDDO\n\
         \x20 ENDDO\n\
         \x20 S = 0.0\n\
         \x20 DO IPEN = IPLO, IPHI\n\
         \x20   DO IX = 1, NX\n\
         \x20     KSRC = ((IX - 1) * NY * NT + IPEN - 1) * 2\n\
         \x20     S = S + RA(KSRC + 1) * RA(KSRC + 1) + RA(KSRC + 2) * RA(KSRC + 2)\n\
         \x20   ENDDO\n\
         \x20 ENDDO\n\
         \x20 CALL MPREDS(S)\n\
         \x20 IF (MYID .EQ. 0) THEN\n\
         \x20   WRITE(*,*) 'CWRITE', S / REAL(NT)\n\
         \x20 ENDIF\n\
         END\n\n{cfft}",
        capr = p.capr(),
        reads = MPI_DECK_READS,
        cfft = cfft_standalone(),
    )
}

fn cfft_standalone() -> String {
    // Same CFFT1 kernel, without target markers (not compiler input).
    let full = m3fk(Variant::Serial);
    let start = full.find("SUBROUTINE CFFT1").expect("kernel present");
    full[start..]
        .lines()
        .filter(|l| !l.starts_with("!$"))
        .collect::<Vec<_>>()
        .join("\n")
        + "\n"
}

fn mpi_findiff(p: &SeismicParams) -> String {
    // Row-block decomposition with halo exchange each step. Plane layout
    // is identical to the shared-memory version, but each rank only
    // touches rows [IYLO-1, IYHI+1].
    format!(
        "PROGRAM FDIFMPI\n\
         \x20 PARAMETER (MCAPR = {capr})\n\
         \x20 COMMON /WORK/ RA(MCAPR)\n\
         {reads}\
         \x20 VELO = 2000.0\n\
         \x20 DX = 10.0\n\
         \x20 IYLO = MYID * (NY - 2) / NP + 2\n\
         \x20 IYHI = (MYID + 1) * (NY - 2) / NP + 1\n\
         \x20 DO IY = IYLO - 1, IYHI + 1\n\
         \x20   DO IX = 1, NX\n\
         \x20     K = (IY - 1) * NX + IX\n\
         \x20     RA(K) = 0.0\n\
         \x20     RA(NBUF + K) = 0.0\n\
         \x20     RA(2 * NBUF + K) = 0.0\n\
         \x20   ENDDO\n\
         \x20 ENDDO\n\
         \x20 ISRC = (NY / 2 - 1) * NX + NX / 2\n\
         \x20 IYSRC = NY / 2\n\
         \x20 IF (IYSRC .GE. IYLO .AND. IYSRC .LE. IYHI) THEN\n\
         \x20   RA(NBUF + ISRC) = 1.0\n\
         \x20 ENDIF\n\
         \x20 C2 = (VELO * DT / DX) * (VELO * DT / DX) * 0.2\n\
         \x20 DO ISTEP = 1, NTIME\n\
         \x20   IF (MYID .GT. 0) THEN\n\
         \x20     CALL MPSEND(RA, NBUF + (IYLO - 1) * NX + 1, NX, MYID - 1, 1)\n\
         \x20     CALL MPRECV(RA, NBUF + (IYLO - 2) * NX + 1, NX, MYID - 1, 2)\n\
         \x20   ENDIF\n\
         \x20   IF (MYID .LT. NP - 1) THEN\n\
         \x20     CALL MPRECV(RA, NBUF + IYHI * NX + 1, NX, MYID + 1, 1)\n\
         \x20     CALL MPSEND(RA, NBUF + (IYHI - 1) * NX + 1, NX, MYID + 1, 2)\n\
         \x20   ENDIF\n\
         \x20   DO IY = IYLO, IYHI\n\
         \x20     DO IX = 2, NX - 1\n\
         \x20       K = (IY - 1) * NX + IX\n\
         \x20       RA(2 * NBUF + K) = 2.0 * RA(NBUF + K) - RA(K) + C2 * (RA(NBUF + K - 1) + RA(NBUF + K + 1) + RA(NBUF + K - NX) + RA(NBUF + K + NX) - 4.0 * RA(NBUF + K))\n\
         \x20     ENDDO\n\
         \x20   ENDDO\n\
         \x20   DO IY = IYLO, IYHI\n\
         \x20     DO IX = 2, NX - 1\n\
         \x20       K = (IY - 1) * NX + IX\n\
         \x20       RA(K) = RA(NBUF + K)\n\
         \x20       RA(NBUF + K) = RA(2 * NBUF + K)\n\
         \x20     ENDDO\n\
         \x20   ENDDO\n\
         \x20 ENDDO\n\
         ! absorbing-boundary damping over the local rows\n\
         \x20 DO IY = IYLO, IYHI\n\
         \x20   DO IX = 1, NX\n\
         \x20     K = (IY - 1) * NX + IX\n\
         \x20     RA(NBUF + K) = RA(NBUF + K) * 0.9999\n\
         \x20   ENDDO\n\
         \x20 ENDDO\n\
         \x20 S = 0.0\n\
         \x20 DO IY = IYLO, IYHI\n\
         \x20   DO IX = 2, NX - 1\n\
         \x20     K = (IY - 1) * NX + IX\n\
         \x20     S = S + RA(NBUF + K) * RA(NBUF + K)\n\
         \x20   ENDDO\n\
         \x20 ENDDO\n\
         \x20 CALL MPREDS(S)\n\
         \x20 IF (MYID .EQ. 0) THEN\n\
         \x20   WRITE(*,*) 'FDE', S\n\
         \x20 ENDIF\n\
         END\n",
        capr = p.capr(),
        reads = MPI_DECK_READS,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use apar_minifort::frontend;

    #[test]
    fn all_variants_parse() {
        for v in [Variant::Serial, Variant::OpenMp] {
            let w = full_suite(DataSize::Test, v);
            frontend(&w.source).unwrap_or_else(|e| panic!("{:?}: {}", v, e));
        }
        for c in [
            Component::DataGen,
            Component::Stack,
            Component::Fft3d,
            Component::FinDiff,
        ] {
            for v in [Variant::Serial, Variant::OpenMp, Variant::Mpi] {
                let w = component(c, DataSize::Test, v);
                frontend(&w.source).unwrap_or_else(|e| panic!("{:?}/{:?}: {}", c, v, e));
            }
        }
    }

    #[test]
    fn target_count_matches_paper_scale() {
        // The paper reports roughly 40 target loops for SEISMIC.
        let n = targets().len();
        assert!((35..=45).contains(&n), "targets = {}", n);
    }

    #[test]
    fn medium_is_order_of_magnitude_larger() {
        let s = SeismicParams::for_size(DataSize::Small);
        let m = SeismicParams::for_size(DataSize::Medium);
        let mem_s = s.capo() + s.capr() + s.caps();
        let mem_m = m.capo() + m.capr() + m.caps();
        let ratio = mem_m as f64 / mem_s as f64;
        assert!((6.0..=14.0).contains(&ratio), "ratio = {}", ratio);
    }

    #[test]
    fn openmp_variant_annotates_targets() {
        let w = full_suite(DataSize::Test, Variant::OpenMp);
        let rp = frontend(&w.source).expect("frontend");
        let mut omp_count = 0;
        for u in &rp.program.units {
            u.body.walk_stmts(&mut |s| {
                if let apar_minifort::StmtKind::Do { omp: Some(_), .. } = &s.kind {
                    omp_count += 1;
                }
            });
        }
        assert!(omp_count >= 20, "OMP loops = {}", omp_count);
    }
}

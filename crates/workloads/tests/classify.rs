//! End-to-end classification: compiling each generated suite with the
//! baseline profile must reproduce the manifest's hindrance categories
//! (Figure 5), and the full-capability profile must recover exactly the
//! loops marked recoverable.

use apar_core::{Classification, Compiler, CompilerProfile};
use apar_workloads::all_suites;

fn classifications(
    w: &apar_workloads::Workload,
    profile: CompilerProfile,
) -> Vec<(String, Classification, bool)> {
    let r = Compiler::new(profile)
        .compile_source(&w.name, &w.source)
        .unwrap_or_else(|e| panic!("{}: {}", w.name, e));
    r.target_loops()
        .map(|l| {
            (
                l.target.clone().expect("target"),
                l.classification,
                l.parallelized
                    || l.classification == Classification::Autoparallelized,
            )
        })
        .collect()
}

#[test]
fn baseline_reproduces_manifest_categories() {
    let mut failures = Vec::new();
    for w in all_suites() {
        let got = classifications(&w, CompilerProfile::polaris2008());
        for spec in &w.targets {
            match got.iter().find(|(n, _, _)| n == &spec.name) {
                None => failures.push(format!("{}/{}: not analyzed", w.name, spec.name)),
                Some((_, c, _)) if *c != spec.expected_baseline => failures.push(format!(
                    "{}/{}: expected {:?}, got {:?}",
                    w.name, spec.name, spec.expected_baseline, c
                )),
                _ => {}
            }
        }
    }
    assert!(
        failures.is_empty(),
        "{} mismatches:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn full_profile_recovers_marked_loops() {
    let mut failures = Vec::new();
    for w in all_suites() {
        let got = classifications(&w, CompilerProfile::full());
        for spec in &w.targets {
            let Some((_, c, _)) = got.iter().find(|(n, _, _)| n == &spec.name) else {
                failures.push(format!("{}/{}: not analyzed", w.name, spec.name));
                continue;
            };
            let recovered = *c == Classification::Autoparallelized;
            if recovered != spec.recovered_by_full {
                failures.push(format!(
                    "{}/{}: recovered={} (classified {:?}), manifest says {}",
                    w.name, spec.name, recovered, c, spec.recovered_by_full
                ));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "{} mismatches:\n{}",
        failures.len(),
        failures.join("\n")
    );
}
